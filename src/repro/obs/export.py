"""Prometheus text-format exposition, a strict parser, and an HTTP endpoint.

:func:`render_prometheus` turns a :class:`~repro.obs.metrics.MetricsRegistry`
into text-format 0.0.4 exposition — the format every Prometheus-compatible
scraper speaks.  It is served two ways: the front-end's ``metrics``
control op (any RSF1 client can ask, no extra port) and
:class:`MetricsHTTPServer` behind ``repro serve --metrics-port`` (a plain
``GET /metrics`` for real scrapers).

:func:`parse_prometheus` is the deliberately strict inverse used by the
test suite, the CI ``obs`` job, and ``repro stats``: it validates the
line grammar, requires ``# TYPE`` before samples, and checks histogram
invariants (cumulative bucket monotonicity, ``+Inf`` bucket equal to
``_count``) so a malformed exposition fails loudly instead of scraping
as garbage.
"""

from __future__ import annotations

import json
import re
import threading
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Dict, List, Optional, Tuple

from .metrics import MetricsRegistry

#: The content type of text-format 0.0.4 exposition, sent by the HTTP
#: endpoint and echoed in the ``metrics`` control-op reply.
CONTENT_TYPE = "text/plain; version=0.0.4; charset=utf-8"

_METRIC_NAME_RE = re.compile(r"^[a-zA-Z_:][a-zA-Z0-9_:]*$")
_SAMPLE_RE = re.compile(
    r"^(?P<name>[a-zA-Z_:][a-zA-Z0-9_:]*)"
    r"(?:\{(?P<labels>[^}]*)\})?"
    r"\s+(?P<value>[^ ]+)$"
)
_LABEL_PAIR_RE = re.compile(r'([a-zA-Z_][a-zA-Z0-9_]*)="((?:[^"\\]|\\.)*)"')


def _escape_help(text: str) -> str:
    return text.replace("\\", "\\\\").replace("\n", "\\n")


def _escape_label_value(value: str) -> str:
    return value.replace("\\", "\\\\").replace('"', '\\"').replace("\n", "\\n")


def _format_value(value: float) -> str:
    if value != value:  # NaN
        return "NaN"
    if value == float("inf"):
        return "+Inf"
    if value == float("-inf"):
        return "-Inf"
    if float(value).is_integer() and abs(value) < 1e15:
        return str(int(value))
    return repr(float(value))


def _format_labels(labels: Dict[str, str]) -> str:
    if not labels:
        return ""
    inner = ",".join(
        f'{name}="{_escape_label_value(str(value))}"' for name, value in labels.items()
    )
    return "{" + inner + "}"


def render_prometheus(registry: MetricsRegistry) -> str:
    """Render every metric in ``registry`` as text-format 0.0.4 exposition.

    Counters and gauges emit one sample per label set; histograms emit
    cumulative ``_bucket{le="..."}`` samples (ending in ``+Inf``) plus
    ``_sum`` and ``_count``, exactly as Prometheus' own client libraries
    do, so recording rules like ``histogram_quantile`` work unchanged.
    """
    lines: List[str] = []
    for metric in registry.collect():
        lines.append(f"# HELP {metric.name} {_escape_help(metric.help)}")
        lines.append(f"# TYPE {metric.name} {metric.kind}")
        if metric.kind == "histogram":
            for labels, bins, total in metric.samples():
                cumulative = 0
                for edge, count in zip(metric.buckets, bins):
                    cumulative += count
                    bucket_labels = dict(labels)
                    bucket_labels["le"] = _format_value(edge)
                    lines.append(
                        f"{metric.name}_bucket{_format_labels(bucket_labels)} {cumulative}"
                    )
                cumulative += bins[-1]
                bucket_labels = dict(labels)
                bucket_labels["le"] = "+Inf"
                lines.append(
                    f"{metric.name}_bucket{_format_labels(bucket_labels)} {cumulative}"
                )
                lines.append(f"{metric.name}_sum{_format_labels(labels)} {_format_value(total)}")
                lines.append(f"{metric.name}_count{_format_labels(labels)} {cumulative}")
        else:
            samples = metric.samples()
            if not samples and not metric.label_names:
                samples = [({}, 0.0)]
            for labels, value in samples:
                lines.append(f"{metric.name}{_format_labels(labels)} {_format_value(value)}")
    return "\n".join(lines) + "\n" if lines else ""


def _parse_value(text: str) -> float:
    if text == "+Inf":
        return float("inf")
    if text == "-Inf":
        return float("-inf")
    if text == "NaN":
        return float("nan")
    return float(text)


_LABEL_ESCAPE_RE = re.compile(r"\\(.)")
_LABEL_ESCAPES = {"n": "\n", '"': '"', "\\": "\\"}


def _unescape_label_value(value: str) -> str:
    # One left-to-right pass: sequential str.replace would mis-unescape
    # r"\\n" (escaped backslash + literal n) into a newline.
    return _LABEL_ESCAPE_RE.sub(
        lambda match: _LABEL_ESCAPES.get(match.group(1), "\\" + match.group(1)), value
    )


def _parse_labels(text: Optional[str]) -> Dict[str, str]:
    if not text:
        return {}
    labels: Dict[str, str] = {}
    consumed = 0
    for match in _LABEL_PAIR_RE.finditer(text):
        labels[match.group(1)] = _unescape_label_value(match.group(2))
        consumed = match.end()
        if consumed < len(text) and text[consumed] == ",":
            consumed += 1
    if consumed != len(text):
        raise ValueError(f"malformed label set {{{text}}}")
    return labels


def parse_prometheus(text: str) -> Dict[str, Dict]:
    """Strictly parse text-format exposition into ``{name: family}`` dicts.

    Each family is ``{"type", "help", "samples"}`` where samples is a
    list of ``(sample_name, labels, value)``.  Raises :class:`ValueError`
    on any grammar violation: samples before their ``# TYPE``, invalid
    names, malformed labels, non-monotone cumulative histogram buckets,
    or a ``+Inf`` bucket disagreeing with ``_count``.
    """
    families: Dict[str, Dict] = {}
    for raw in text.splitlines():
        line = raw.rstrip()
        if not line:
            continue
        if line.startswith("# HELP "):
            parts = line.split(" ", 3)
            if len(parts) < 3 or not _METRIC_NAME_RE.match(parts[2]):
                raise ValueError(f"malformed HELP line: {line!r}")
            families.setdefault(parts[2], {"type": None, "help": None, "samples": []})[
                "help"
            ] = parts[3] if len(parts) > 3 else ""
            continue
        if line.startswith("# TYPE "):
            parts = line.split(" ")
            if len(parts) != 4 or not _METRIC_NAME_RE.match(parts[2]):
                raise ValueError(f"malformed TYPE line: {line!r}")
            if parts[3] not in ("counter", "gauge", "histogram", "summary", "untyped"):
                raise ValueError(f"unknown metric type in: {line!r}")
            families.setdefault(parts[2], {"type": None, "help": None, "samples": []})[
                "type"
            ] = parts[3]
            continue
        if line.startswith("#"):
            continue  # comment
        match = _SAMPLE_RE.match(line)
        if not match:
            raise ValueError(f"malformed sample line: {line!r}")
        sample_name = match.group("name")
        labels = _parse_labels(match.group("labels"))
        value = _parse_value(match.group("value"))
        family_name = sample_name
        for suffix in ("_bucket", "_sum", "_count"):
            if sample_name.endswith(suffix) and sample_name[: -len(suffix)] in families:
                family_name = sample_name[: -len(suffix)]
                break
        family = families.get(family_name)
        if family is None or family["type"] is None:
            raise ValueError(f"sample {sample_name!r} appears before its # TYPE line")
        family["samples"].append((sample_name, labels, value))
    _check_histograms(families)
    return families


def _check_histograms(families: Dict[str, Dict]) -> None:
    for name, family in families.items():
        if family["type"] != "histogram":
            continue
        buckets: Dict[Tuple[Tuple[str, str], ...], List[Tuple[float, float]]] = {}
        counts: Dict[Tuple[Tuple[str, str], ...], float] = {}
        for sample_name, labels, value in family["samples"]:
            if sample_name == f"{name}_bucket":
                key = tuple(sorted((k, v) for k, v in labels.items() if k != "le"))
                buckets.setdefault(key, []).append((_parse_value(labels["le"]), value))
            elif sample_name == f"{name}_count":
                counts[tuple(sorted(labels.items()))] = value
        for key, edges in buckets.items():
            ordered = sorted(edges)
            values = [count for _, count in ordered]
            if any(b < a for a, b in zip(values, values[1:])):
                raise ValueError(f"histogram {name!r} buckets are not cumulative")
            if ordered and ordered[-1][0] != float("inf"):
                raise ValueError(f"histogram {name!r} is missing its +Inf bucket")
            if key in counts and ordered and ordered[-1][1] != counts[key]:
                raise ValueError(f"histogram {name!r} +Inf bucket disagrees with _count")


def histogram_quantile(family: Dict, q: float, labels: Optional[Dict[str, str]] = None) -> float:
    """Estimate a quantile from a parsed histogram family (scraper-side).

    Mirrors :meth:`~repro.obs.metrics.Histogram.quantile` but runs on the
    parsed exposition, so the CI ``obs`` job can check server-side
    percentiles against client-side ones without importing server state.
    ``labels`` filters bucket samples; returns ``nan`` on no data.
    """
    want = {k: str(v) for k, v in (labels or {}).items()}
    edges: List[Tuple[float, float]] = []
    for sample_name, sample_labels, value in family["samples"]:
        if not sample_name.endswith("_bucket"):
            continue
        plain = {k: v for k, v in sample_labels.items() if k != "le"}
        if want and any(plain.get(k) != v for k, v in want.items()):
            continue
        edges.append((_parse_value(sample_labels["le"]), value))
    edges.sort()
    if not edges or edges[-1][1] == 0:
        return float("nan")
    total = edges[-1][1]
    target = q * total
    previous_edge, previous_count = 0.0, 0.0
    for edge, cumulative in edges:
        if cumulative >= target:
            if edge == float("inf"):
                return previous_edge
            span = cumulative - previous_count
            fraction = (target - previous_count) / span if span else 0.0
            return previous_edge + min(1.0, max(0.0, fraction)) * (edge - previous_edge)
        previous_edge, previous_count = edge, cumulative
    return previous_edge


class _MetricsHandler(BaseHTTPRequestHandler):
    """Serves ``GET /metrics``; everything else is a 404."""

    server_version = "repro-obs/1"

    def do_GET(self) -> None:  # noqa: N802 (http.server API)
        """Answer the scrape (or 404 for any other path)."""
        if self.path.split("?")[0] not in ("/metrics", "/metrics/"):
            self.send_error(404, "only /metrics is served")
            return
        body = render_prometheus(self.server.registry).encode("utf-8")  # type: ignore[attr-defined]
        self.send_response(200)
        self.send_header("Content-Type", CONTENT_TYPE)
        self.send_header("Content-Length", str(len(body)))
        self.end_headers()
        self.wfile.write(body)

    def log_message(self, format: str, *args) -> None:  # noqa: A002
        """Route access logs to the ``repro.obs`` logger, not stderr."""
        import logging

        logging.getLogger("repro.obs").debug("metrics http: " + format, *args)


class MetricsHTTPServer:
    """A background ``GET /metrics`` endpoint for Prometheus scrapers.

    ``repro serve --metrics-port N`` runs one of these next to the TCP
    front-end; ``port=0`` binds an ephemeral port (read ``.port`` after
    construction).  Usable as a context manager; :meth:`close` joins the
    serving thread.
    """

    def __init__(self, registry: MetricsRegistry, host: str = "127.0.0.1", port: int = 0) -> None:
        self.registry = registry
        self._httpd = ThreadingHTTPServer((host, port), _MetricsHandler)
        self._httpd.registry = registry  # type: ignore[attr-defined]
        self._httpd.daemon_threads = True
        self.host = self._httpd.server_address[0]
        self.port = int(self._httpd.server_address[1])
        self._thread = threading.Thread(
            target=self._httpd.serve_forever, name="repro-metrics-http", daemon=True
        )
        self._thread.start()

    def url(self) -> str:
        """The scrape URL, e.g. ``http://127.0.0.1:9109/metrics``."""
        return f"http://{self.host}:{self.port}/metrics"

    def close(self) -> None:
        """Stop serving and join the background thread."""
        self._httpd.shutdown()
        self._thread.join(timeout=5.0)
        self._httpd.server_close()

    def __enter__(self) -> "MetricsHTTPServer":
        """Context-manager entry (the server is already running)."""
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        """Context-manager exit: close the endpoint."""
        self.close()


def format_metrics_table(text: str) -> str:
    """Pretty-print exposition for humans (the ``repro stats`` CLI).

    Counters and gauges render as ``name{labels} value`` lines; each
    histogram renders one line with count, mean, and estimated p50/p99.
    """
    families = parse_prometheus(text)
    lines: List[str] = []
    for name, family in families.items():
        if family["type"] == "histogram":
            by_labels: Dict[str, Tuple[float, float]] = {}
            for sample_name, labels, value in family["samples"]:
                key = json.dumps(
                    {k: v for k, v in labels.items() if k != "le"}, sort_keys=True
                )
                total, count = by_labels.get(key, (0.0, 0.0))
                if sample_name == f"{name}_sum":
                    total = value
                elif sample_name == f"{name}_count":
                    count = value
                by_labels[key] = (total, count)
            for key, (total, count) in by_labels.items():
                labels = json.loads(key)
                p50 = histogram_quantile(family, 0.50, labels)
                p99 = histogram_quantile(family, 0.99, labels)
                mean = total / count if count else float("nan")
                label_text = _format_labels(labels)
                lines.append(
                    f"{name}{label_text}  count={count:.0f} mean={mean:.6g} "
                    f"p50={p50:.6g} p99={p99:.6g}"
                )
        else:
            for sample_name, labels, value in family["samples"]:
                lines.append(f"{sample_name}{_format_labels(labels)} {_format_value(value)}")
    return "\n".join(lines)
