"""Trace representation and preprocessing.

This package converts raw packet captures into the paper's input
representation (Section IV-A.1, Figure 4): per-IP byte-count sequences with
preserved relative ordering, optional quantization, and fixed-shape arrays
ready for the embedding network.  It also provides the labelled dataset
container and the Set A/B/C/D split geometry of Figure 5.
"""

from repro.traces.trace import Trace
from repro.traces.sequences import SequenceExtractor, extract_ip_runs
from repro.traces.quantize import quantize_counts
from repro.traces.dataset import TraceDataset
from repro.traces.splits import FourWaySplit, four_way_split, reference_test_split
from repro.traces.build import collect_dataset

__all__ = [
    "collect_dataset",
    "Trace",
    "SequenceExtractor",
    "extract_ip_runs",
    "quantize_counts",
    "TraceDataset",
    "FourWaySplit",
    "four_way_split",
    "reference_test_split",
]
