"""Labelled trace datasets.

A :class:`TraceDataset` holds the preprocessed traces of many page loads as
a single array plus integer labels, mirroring the role of the paper's
Wiki19000 / Github500 collections.  It supports the slicing operations the
experiments need (per-class splits, class subsets, merging) and round-trips
to ``.npz`` files so generated datasets can be cached between runs.
"""

from __future__ import annotations

import os
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, Iterable, List, Optional, Sequence, Tuple, Union

import numpy as np

from repro.traces.trace import Trace

PathLike = Union[str, os.PathLike]


@dataclass
class TraceDataset:
    """A collection of preprocessed traces with integer class labels.

    ``data`` has shape ``(n_traces, n_sequences, sequence_length)`` and
    ``labels`` holds an integer per trace indexing into ``class_names``.
    """

    data: np.ndarray
    labels: np.ndarray
    class_names: List[str]
    website: str = ""
    tls_version: str = ""

    def __post_init__(self) -> None:
        self.data = np.asarray(self.data, dtype=np.float64)
        self.labels = np.asarray(self.labels, dtype=np.int64)
        if self.data.ndim != 3:
            raise ValueError(f"data must be 3-D (traces, sequences, length), got {self.data.shape}")
        if self.labels.ndim != 1 or self.labels.shape[0] != self.data.shape[0]:
            raise ValueError("labels must be 1-D and aligned with data")
        if len(self.labels) and (self.labels.min() < 0 or self.labels.max() >= len(self.class_names)):
            raise ValueError("labels reference classes outside class_names")

    # ------------------------------------------------------------- constructors
    @classmethod
    def from_traces(cls, traces: Sequence[Trace], website: str = "", tls_version: str = "") -> "TraceDataset":
        """Build a dataset from :class:`Trace` objects (labels are strings)."""
        if not traces:
            raise ValueError("cannot build a dataset from zero traces")
        shapes = {t.sequences.shape for t in traces}
        if len(shapes) != 1:
            raise ValueError(f"traces have inconsistent shapes: {sorted(shapes)}")
        class_names = sorted({t.label for t in traces})
        index = {name: i for i, name in enumerate(class_names)}
        data = np.stack([t.sequences for t in traces])
        labels = np.array([index[t.label] for t in traces], dtype=np.int64)
        website = website or (traces[0].website if traces[0].website else "")
        tls_version = tls_version or traces[0].tls_version
        return cls(data=data, labels=labels, class_names=class_names, website=website, tls_version=tls_version)

    # ------------------------------------------------------------------- basics
    def __len__(self) -> int:
        return int(self.data.shape[0])

    @property
    def n_classes(self) -> int:
        return len(self.class_names)

    @property
    def n_sequences(self) -> int:
        return int(self.data.shape[1])

    @property
    def sequence_length(self) -> int:
        return int(self.data.shape[2])

    def label_name(self, label: int) -> str:
        return self.class_names[int(label)]

    def samples_per_class(self) -> Dict[int, int]:
        unique, counts = np.unique(self.labels, return_counts=True)
        return {int(u): int(c) for u, c in zip(unique, counts)}

    def model_inputs(self) -> np.ndarray:
        """All traces as ``(n, time, features)`` arrays for the network."""
        return np.transpose(self.data, (0, 2, 1)).copy()

    # ---------------------------------------------------------------- selection
    def subset(self, indices: Iterable[int]) -> "TraceDataset":
        """A new dataset containing only the given trace indices."""
        indices = np.asarray(list(indices), dtype=np.int64)
        return TraceDataset(
            data=self.data[indices],
            labels=self.labels[indices],
            class_names=list(self.class_names),
            website=self.website,
            tls_version=self.tls_version,
        )

    def filter_classes(self, class_ids: Iterable[int]) -> "TraceDataset":
        """Keep only traces of the given classes (labels are re-indexed)."""
        keep = sorted(set(int(c) for c in class_ids))
        if not keep:
            raise ValueError("filter_classes requires at least one class")
        unknown = [c for c in keep if c < 0 or c >= self.n_classes]
        if unknown:
            raise ValueError(f"unknown class ids: {unknown}")
        mask = np.isin(self.labels, keep)
        remap = {old: new for new, old in enumerate(keep)}
        new_labels = np.array([remap[int(l)] for l in self.labels[mask]], dtype=np.int64)
        return TraceDataset(
            data=self.data[mask],
            labels=new_labels,
            class_names=[self.class_names[c] for c in keep],
            website=self.website,
            tls_version=self.tls_version,
        )

    def first_n_classes(self, n: int) -> "TraceDataset":
        """The slice containing classes ``0..n-1`` (used for sweep slices)."""
        if n <= 0 or n > self.n_classes:
            raise ValueError(f"n must be in [1, {self.n_classes}], got {n}")
        return self.filter_classes(range(n))

    def split_per_class(self, first_fraction: float, seed: int = 0) -> Tuple["TraceDataset", "TraceDataset"]:
        """Split every class's samples into two datasets (e.g. 90 % / 10 %).

        This is the reference/test split used throughout the evaluation:
        ~90 samples per class serve as labelled reference points and the
        remaining ~10 are classified.
        """
        if not 0.0 < first_fraction < 1.0:
            raise ValueError("first_fraction must be in (0, 1)")
        rng = np.random.default_rng(seed)
        first_indices: List[int] = []
        second_indices: List[int] = []
        for class_id in range(self.n_classes):
            class_indices = np.flatnonzero(self.labels == class_id)
            if len(class_indices) == 0:
                continue
            permuted = rng.permutation(class_indices)
            cut = max(1, int(round(first_fraction * len(permuted))))
            cut = min(cut, len(permuted) - 1) if len(permuted) > 1 else 1
            first_indices.extend(permuted[:cut].tolist())
            second_indices.extend(permuted[cut:].tolist())
        if not second_indices:
            raise ValueError("split produced an empty second part; add more samples per class")
        return self.subset(first_indices), self.subset(second_indices)

    def merge(self, other: "TraceDataset") -> "TraceDataset":
        """Concatenate two datasets, unioning their class name spaces."""
        if self.data.shape[1:] != other.data.shape[1:]:
            raise ValueError("cannot merge datasets with different trace shapes")
        class_names = list(dict.fromkeys(self.class_names + other.class_names))
        index = {name: i for i, name in enumerate(class_names)}
        labels_self = np.array([index[self.class_names[l]] for l in self.labels], dtype=np.int64)
        labels_other = np.array([index[other.class_names[l]] for l in other.labels], dtype=np.int64)
        return TraceDataset(
            data=np.concatenate([self.data, other.data]),
            labels=np.concatenate([labels_self, labels_other]),
            class_names=class_names,
            website=self.website or other.website,
            tls_version=self.tls_version or other.tls_version,
        )

    # --------------------------------------------------------------- persistence
    def save(self, path: PathLike) -> Path:
        """Save the dataset to an ``.npz`` archive."""
        path = Path(path)
        if path.suffix != ".npz":
            path = path.with_suffix(".npz")
        path.parent.mkdir(parents=True, exist_ok=True)
        np.savez_compressed(
            path,
            data=self.data,
            labels=self.labels,
            class_names=np.array(self.class_names, dtype=object),
            website=np.array(self.website),
            tls_version=np.array(self.tls_version),
        )
        return path

    @classmethod
    def load(cls, path: PathLike) -> "TraceDataset":
        path = Path(path)
        if not path.exists():
            raise FileNotFoundError(f"dataset archive not found: {path}")
        with np.load(path, allow_pickle=True) as archive:
            return cls(
                data=archive["data"],
                labels=archive["labels"],
                class_names=[str(name) for name in archive["class_names"]],
                website=str(archive["website"]),
                tls_version=str(archive["tls_version"]),
            )
