"""Converting packet captures into per-IP byte-count sequences.

This is the preprocessing of Section IV-A.1 and Figure 4 of the paper:

* every IP address that transmitted during the page load gets its own
  sequence, with the monitored client always first;
* each time an IP transmits, its byte count is appended to its sequence and
  a zero is appended to every other sequence (preserving relative order);
* consecutive packets from the same IP are aggregated into a single entry;
* optionally the counts are quantized and/or log-scaled, and the sequences
  are padded/truncated to a fixed length for the neural network.

The two-sequence encoding used by prior (Tor-focused) work — one sequence
for outgoing and one for incoming traffic — is available via
``max_sequences=2, merge_servers=True`` and is what Experiment 3 uses for
the Github dataset, whose per-load server count varies.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Tuple

import numpy as np

from repro.net.address import IPAddress
from repro.net.capture import PacketCapture
from repro.traces.quantize import quantize_counts
from repro.traces.trace import Trace


def extract_ip_runs(capture: PacketCapture) -> List[Tuple[IPAddress, int]]:
    """Collapse the capture into (sender, aggregated-bytes) runs.

    Consecutive packets from the same sender are merged (summed); a run
    ends as soon as a different IP transmits, which is exactly the
    aggregation rule illustrated in Figure 4.
    """
    runs: List[Tuple[IPAddress, int]] = []
    for timestamp, sender, size in capture.transmissions():
        if runs and runs[-1][0] == sender:
            runs[-1] = (sender, runs[-1][1] + size)
        else:
            runs.append((sender, size))
    return runs


@dataclass
class SequenceExtractor:
    """Turns :class:`PacketCapture` objects into fixed-shape traces.

    Parameters
    ----------
    max_sequences:
        Number of per-IP sequences to keep (client first).  The paper uses
        3 for Wikipedia (client + text + media server) and 2 for the
        two-sequence encoding.
    sequence_length:
        Fixed length the sequences are padded / truncated to.
    aggregate_consecutive:
        Merge consecutive transmissions of the same IP (paper default).
    quantization_step:
        Byte-count quantization step; 0 disables quantization.
    log_scale:
        Apply ``log1p`` to the counts — keeps the large dynamic range of
        response sizes (hundreds of bytes to megabytes) in a range a neural
        network trains on comfortably.
    merge_servers:
        Fold all non-client senders into a single "incoming" sequence
        (two-sequence encoding).  Requires ``max_sequences == 2``.
    tail_aggregate:
        When a trace has more transmission events than ``sequence_length``,
        fold the overflow into the final position of each sequence instead
        of discarding it.  This keeps the per-server byte totals — the
        strongest identifying signal — intact for long page loads while the
        fixed-length prefix preserves the ordering information.
    """

    max_sequences: int = 3
    sequence_length: int = 40
    aggregate_consecutive: bool = True
    quantization_step: int = 0
    log_scale: bool = True
    merge_servers: bool = False
    tail_aggregate: bool = True

    def __post_init__(self) -> None:
        if self.max_sequences < 2:
            raise ValueError("max_sequences must be at least 2 (client + one server)")
        if self.sequence_length <= 0:
            raise ValueError("sequence_length must be positive")
        if self.quantization_step < 0:
            raise ValueError("quantization_step must be non-negative")
        if self.merge_servers and self.max_sequences != 2:
            raise ValueError("merge_servers requires max_sequences == 2")

    # ------------------------------------------------------------------ public
    def extract(self, capture: PacketCapture, label: str, website: str = "", tls_version: str = "") -> Trace:
        """Extract a labelled :class:`Trace` from one capture."""
        sequences = self.extract_array(capture)
        return Trace(
            label=label,
            website=website,
            sequences=sequences,
            tls_version=tls_version,
            metadata={"duration": capture.duration, "total_bytes": float(capture.total_bytes)},
        )

    def extract_array(self, capture: PacketCapture) -> np.ndarray:
        """The ``(max_sequences, sequence_length)`` array for one capture."""
        variable = self._variable_length_sequences(capture)
        fixed = self._pad_truncate(variable)
        if self.quantization_step > 1:
            fixed = quantize_counts(fixed, self.quantization_step)
        if self.log_scale:
            fixed = np.log1p(fixed)
        return fixed

    # ---------------------------------------------------------------- internals
    def _sender_events(self, capture: PacketCapture) -> List[Tuple[IPAddress, int]]:
        if self.aggregate_consecutive:
            return extract_ip_runs(capture)
        return [(sender, size) for _, sender, size in capture.transmissions()]

    def _variable_length_sequences(self, capture: PacketCapture) -> List[List[float]]:
        events = self._sender_events(capture)
        client = capture.client_ip

        if self.merge_servers:
            sequence_keys: List[object] = [client, "incoming"]

            def key_for(sender: IPAddress) -> object:
                return client if sender == client else "incoming"

        else:
            # Client first, then servers in order of first appearance;
            # any servers beyond the budget are folded into the last slot.
            remotes = capture.remote_ips()
            kept = remotes[: self.max_sequences - 1]
            sequence_keys = [client] + list(kept)
            overflow_key = kept[-1] if kept else None

            def key_for(sender: IPAddress) -> object:
                if sender == client or sender in kept:
                    return sender
                return overflow_key

        sequences: Dict[object, List[float]] = {key: [] for key in sequence_keys}
        for sender, size in events:
            key = key_for(sender)
            if key is None:
                continue
            for other_key in sequence_keys:
                sequences[other_key].append(float(size) if other_key == key else 0.0)
        return [sequences[key] for key in sequence_keys]

    def _pad_truncate(self, variable: List[List[float]]) -> np.ndarray:
        fixed = np.zeros((self.max_sequences, self.sequence_length), dtype=np.float64)
        for row, sequence in enumerate(variable[: self.max_sequences]):
            if len(sequence) >= self.sequence_length:
                fixed[row, :] = sequence[: self.sequence_length]
                if self.tail_aggregate:
                    fixed[row, -1] += float(sum(sequence[self.sequence_length :]))
            else:
                fixed[row, : len(sequence)] = sequence
        return fixed
