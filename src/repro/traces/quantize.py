"""Byte-count quantization (the optional noise-reduction step of §IV-A.1).

Quantizing byte counts to a step size removes small differences (a few
bytes of varying HTTP headers, TLS padding jitter) that carry little
identifying information but add noise to the learned representation.
"""

from __future__ import annotations

import numpy as np


def quantize_counts(counts: np.ndarray, step: int) -> np.ndarray:
    """Round byte counts to the nearest multiple of ``step``.

    ``step <= 1`` disables quantization (the array is returned unchanged,
    as a copy).  Non-zero counts never quantize to zero: a transmission of
    1 byte is still a transmission, and erasing it would change the
    *ordering* information the sequences encode, not just their magnitude.
    """
    counts = np.asarray(counts, dtype=np.float64)
    if step < 0:
        raise ValueError("quantization step must be non-negative")
    if step <= 1:
        return counts.copy()
    quantized = np.round(counts / step) * step
    nonzero_erased = (counts > 0) & (quantized == 0)
    quantized[nonzero_erased] = step
    return quantized
