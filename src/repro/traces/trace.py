"""The Trace type: one preprocessed, labelled page-load observation."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional

import numpy as np


@dataclass
class Trace:
    """A single preprocessed traffic trace.

    ``sequences`` has shape ``(n_sequences, sequence_length)`` where row 0
    is always the monitored client and the remaining rows are content
    servers (or, in the two-sequence encoding, row 0 is outgoing and row 1
    incoming traffic).  Values are byte counts (possibly quantized and/or
    log-scaled by the extractor).
    """

    label: str
    website: str
    sequences: np.ndarray
    tls_version: str = ""
    metadata: Dict[str, float] = field(default_factory=dict)

    def __post_init__(self) -> None:
        self.sequences = np.asarray(self.sequences, dtype=np.float64)
        if self.sequences.ndim != 2:
            raise ValueError(
                f"trace sequences must be 2-D (n_sequences, length), got shape {self.sequences.shape}"
            )
        if not self.label:
            raise ValueError("trace label must be non-empty")
        if np.any(self.sequences < 0):
            raise ValueError("byte-count sequences cannot be negative")

    @property
    def n_sequences(self) -> int:
        return int(self.sequences.shape[0])

    @property
    def length(self) -> int:
        return int(self.sequences.shape[1])

    @property
    def total_volume(self) -> float:
        """Sum of all byte counts in the trace (after any scaling)."""
        return float(self.sequences.sum())

    def as_model_input(self) -> np.ndarray:
        """The trace as a ``(time, features)`` array for the LSTM.

        The embedding network consumes sequences time-major: at each time
        step the feature vector holds the byte count emitted by each tracked
        IP (zero for the IPs that were silent at that step).
        """
        return self.sequences.T.copy()
