"""The Set A / B / C / D split geometry of Figure 5.

Experiments 1 and 2 rely on a specific four-way split of the Wikipedia
dataset:

* **Set A** — training classes, ~90 % of their samples (model training and,
  in Experiment 1, the reference corpus);
* **Set B** — the *same* classes as A, the remaining ~10 % of samples
  (Experiment 1's test set);
* **Set C** — a *disjoint* set of classes, ~90 % of their samples
  (Experiment 2's reference corpus);
* **Set D** — the same classes as C, the remaining samples (Experiment 2's
  test set).

No sample appears in more than one set and the class sets {A, B} and
{C, D} do not overlap.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Tuple

import numpy as np

from repro.traces.dataset import TraceDataset


@dataclass
class FourWaySplit:
    """The four sets of Figure 5."""

    set_a: TraceDataset
    set_b: TraceDataset
    set_c: TraceDataset
    set_d: TraceDataset

    def summary(self) -> str:
        """A short human-readable description of the split sizes."""
        parts = []
        for name, dataset in (("A", self.set_a), ("B", self.set_b), ("C", self.set_c), ("D", self.set_d)):
            parts.append(f"Set {name}: {dataset.n_classes} classes, {len(dataset)} traces")
        return "; ".join(parts)


def reference_test_split(
    dataset: TraceDataset, reference_fraction: float = 0.9, seed: int = 0
) -> Tuple[TraceDataset, TraceDataset]:
    """Per-class reference/test split (the 90/10 split used everywhere)."""
    return dataset.split_per_class(reference_fraction, seed=seed)


def four_way_split(
    dataset: TraceDataset,
    train_classes: int,
    reference_fraction: float = 0.9,
    seed: int = 0,
) -> FourWaySplit:
    """Split ``dataset`` into Sets A, B, C and D.

    ``train_classes`` classes (chosen deterministically from the seed) form
    the A/B side; every remaining class forms the C/D side.  Within each
    side the samples of every class are split ``reference_fraction`` /
    ``1 - reference_fraction`` into the reference and test parts.
    """
    if train_classes <= 0:
        raise ValueError("train_classes must be positive")
    if train_classes >= dataset.n_classes:
        raise ValueError(
            f"train_classes ({train_classes}) must leave at least one class for Sets C/D "
            f"(dataset has {dataset.n_classes} classes)"
        )
    rng = np.random.default_rng(seed)
    order = rng.permutation(dataset.n_classes)
    train_ids = sorted(int(c) for c in order[:train_classes])
    eval_ids = sorted(int(c) for c in order[train_classes:])

    train_side = dataset.filter_classes(train_ids)
    eval_side = dataset.filter_classes(eval_ids)
    set_a, set_b = train_side.split_per_class(reference_fraction, seed=seed + 1)
    set_c, set_d = eval_side.split_per_class(reference_fraction, seed=seed + 2)
    return FourWaySplit(set_a=set_a, set_b=set_b, set_c=set_c, set_d=set_d)
