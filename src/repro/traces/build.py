"""End-to-end dataset collection: crawl a website, preprocess, label.

This is the glue the paper's Section V pipeline corresponds to — crawler
instances produce pcaps, pcaps are processed into sequences, sequences are
stored as a labelled dataset — condensed into one function call against the
synthetic substrate.
"""

from __future__ import annotations

from typing import Optional, Sequence

from repro.traces.dataset import TraceDataset
from repro.traces.sequences import SequenceExtractor
from repro.web.browser import Browser
from repro.web.crawler import Crawler
from repro.web.website import Website


def collect_dataset(
    website: Website,
    extractor: Optional[SequenceExtractor] = None,
    *,
    page_ids: Optional[Sequence[str]] = None,
    visits_per_page: int = 10,
    seed: int = 0,
    browser: Optional[Browser] = None,
) -> TraceDataset:
    """Crawl ``website`` and return a preprocessed, labelled dataset.

    Parameters mirror the paper's collection knobs: which pages to monitor,
    how many visits (instances) per page, and how traces are preprocessed
    (the ``extractor``).  The crawl is deterministic in ``seed``.
    """
    extractor = extractor if extractor is not None else SequenceExtractor()
    crawler = Crawler(browser=browser, seed=seed)
    captures = crawler.crawl(website, page_ids=page_ids, visits_per_page=visits_per_page)
    traces = [
        extractor.extract(
            labeled.capture,
            label=labeled.page_id,
            website=labeled.website,
            tls_version=str(website.tls_version),
        )
        for labeled in captures
    ]
    return TraceDataset.from_traces(traces, website=website.name, tls_version=str(website.tls_version))
