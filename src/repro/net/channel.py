"""Transmission channel between the client and one server.

The channel turns TLS record wire sizes into packets on the wire: records
are segmented into MTU-sized TCP segments, each segment gets a timestamp
from the latency model, and a configurable fraction of segments is
duplicated to emulate retransmissions.  Every emitted packet is offered to
the attached sniffer, mirroring how tcpdump sees traffic in the paper's
data-collection setup.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional

import numpy as np

from repro.net.address import IPAddress
from repro.net.capture import Sniffer
from repro.net.latency import LatencyModel
from repro.net.packet import Packet

# Typical TCP maximum segment size for an Ethernet path carrying TLS.
DEFAULT_MSS = 1460


@dataclass
class TransmissionChannel:
    """A bidirectional client<->server path carrying TLS records."""

    client_ip: IPAddress
    server_ip: IPAddress
    latency: LatencyModel = field(default_factory=LatencyModel)
    mss: int = DEFAULT_MSS
    retransmission_rate: float = 0.0
    sniffer: Optional[Sniffer] = None

    def __post_init__(self) -> None:
        if self.mss <= 0:
            raise ValueError("mss must be positive")
        if not 0.0 <= self.retransmission_rate < 1.0:
            raise ValueError("retransmission_rate must be in [0, 1)")

    def transmit(
        self,
        record_sizes: List[int],
        *,
        from_client: bool,
        start_time: float,
        rng: np.random.Generator,
    ) -> float:
        """Send TLS records in one direction starting at ``start_time``.

        Returns the time at which the last packet arrived, so callers can
        sequence request/response exchanges.
        """
        src = self.client_ip if from_client else self.server_ip
        dst = self.server_ip if from_client else self.client_ip
        now = float(start_time)
        for record in record_sizes:
            if record < 0:
                raise ValueError("record sizes must be non-negative")
            for segment in self._segment(record):
                now += self.latency.one_way_delay(segment, rng)
                self._emit(Packet(timestamp=now, src=src, dst=dst, size=segment))
                if self.retransmission_rate > 0 and rng.random() < self.retransmission_rate:
                    duplicate_time = now + self.latency.one_way_delay(segment, rng)
                    self._emit(
                        Packet(
                            timestamp=duplicate_time,
                            src=src,
                            dst=dst,
                            size=segment,
                            retransmission=True,
                        )
                    )
                    now = duplicate_time
        return now

    def _segment(self, record_size: int) -> List[int]:
        """Split one TLS record into MTU-sized TCP segments."""
        if record_size == 0:
            return [0]
        segments = []
        remaining = record_size
        while remaining > 0:
            segment = min(self.mss, remaining)
            segments.append(segment)
            remaining -= segment
        return segments

    def _emit(self, packet: Packet) -> None:
        if self.sniffer is not None:
            self.sniffer.observe(packet)
