"""IP addresses and endpoints.

TLS does not conceal the IP addresses of the communicating parties
(Section II-A of the paper); the adversary's per-IP sequences are keyed by
these addresses, so the substrate models them explicitly.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, List


@dataclass(frozen=True, order=True)
class IPAddress:
    """An IPv4 address represented as a dotted-quad string."""

    value: str

    def __post_init__(self) -> None:
        parts = self.value.split(".")
        if len(parts) != 4:
            raise ValueError(f"invalid IPv4 address: {self.value!r}")
        for part in parts:
            if not part.isdigit() or not 0 <= int(part) <= 255:
                raise ValueError(f"invalid IPv4 address: {self.value!r}")

    def __str__(self) -> str:
        return self.value

    @property
    def as_int(self) -> int:
        """The address packed into a 32-bit integer (useful for sorting)."""
        a, b, c, d = (int(p) for p in self.value.split("."))
        return (a << 24) | (b << 16) | (c << 8) | d

    @classmethod
    def from_int(cls, packed: int) -> "IPAddress":
        if not 0 <= packed <= 0xFFFFFFFF:
            raise ValueError(f"packed address out of range: {packed}")
        parts = [(packed >> shift) & 0xFF for shift in (24, 16, 8, 0)]
        return cls(".".join(str(p) for p in parts))


@dataclass(frozen=True)
class Endpoint:
    """A transport endpoint: IP address plus TCP port."""

    ip: IPAddress
    port: int = 443

    def __post_init__(self) -> None:
        if not 0 < self.port <= 65535:
            raise ValueError(f"invalid port: {self.port}")

    def __str__(self) -> str:
        return f"{self.ip}:{self.port}"


class AddressAllocator:
    """Hands out unique IP addresses from a private /16-style pool.

    Used by the web substrate to assign addresses to clients and to each
    content server of a synthetic website.  Allocation is deterministic so
    that datasets are reproducible run-to-run.
    """

    def __init__(self, base: str = "10.0.0.0") -> None:
        self._base = IPAddress(base).as_int
        self._next = 1

    def allocate(self) -> IPAddress:
        """Return the next unused address in the pool."""
        address = IPAddress.from_int(self._base + self._next)
        self._next += 1
        return address

    def allocate_many(self, count: int) -> List[IPAddress]:
        if count < 0:
            raise ValueError("count must be non-negative")
        return [self.allocate() for _ in range(count)]

    def __iter__(self) -> Iterator[IPAddress]:
        while True:
            yield self.allocate()
