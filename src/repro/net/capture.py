"""Passive packet captures — the reproduction's equivalent of a pcap file.

The crawler of Section V runs tcpdump for the duration of a single page
load and stores the result as one pcap file per visit.  Here a
:class:`Sniffer` plays tcpdump's role and a :class:`PacketCapture` plays
the pcap file's role; the downstream preprocessing in
:mod:`repro.traces.sequences` consumes captures exactly the way the paper's
preprocessing consumes pcaps.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, Iterator, List, Optional, Tuple

from repro.net.address import IPAddress
from repro.net.packet import Direction, Packet


@dataclass
class PacketCapture:
    """An ordered collection of observed packets for one page load."""

    client_ip: IPAddress
    packets: List[Packet] = field(default_factory=list)

    def add(self, packet: Packet) -> None:
        """Append a packet (captures are kept sorted lazily on read)."""
        self.packets.append(packet)

    def extend(self, packets: Iterable[Packet]) -> None:
        for packet in packets:
            self.add(packet)

    def sorted_packets(self) -> List[Packet]:
        """Packets in timestamp order (stable for equal timestamps)."""
        return sorted(self.packets, key=lambda p: p.timestamp)

    def __len__(self) -> int:
        return len(self.packets)

    def __iter__(self) -> Iterator[Packet]:
        return iter(self.sorted_packets())

    @property
    def duration(self) -> float:
        """Time between the first and last packet, 0 for empty captures."""
        if not self.packets:
            return 0.0
        times = [p.timestamp for p in self.packets]
        return max(times) - min(times)

    @property
    def total_bytes(self) -> int:
        return sum(p.size for p in self.packets)

    def bytes_by_direction(self) -> Dict[Direction, int]:
        """Total bytes sent and received by the monitored client."""
        totals = {Direction.OUTGOING: 0, Direction.INCOMING: 0}
        for packet in self.packets:
            totals[packet.direction(self.client_ip)] += packet.size
        return totals

    def remote_ips(self) -> List[IPAddress]:
        """The distinct non-client IPs, in order of first appearance."""
        seen: List[IPAddress] = []
        for packet in self.sorted_packets():
            remote = packet.dst if packet.src == self.client_ip else packet.src
            if remote not in seen:
                seen.append(remote)
        return seen

    def filter_ip(self, ip: IPAddress) -> "PacketCapture":
        """A new capture containing only packets that involve ``ip``."""
        subset = PacketCapture(client_ip=self.client_ip)
        subset.extend(p for p in self.packets if p.involves(ip))
        return subset

    def transmissions(self) -> List[Tuple[float, IPAddress, int]]:
        """(timestamp, sender-ip, bytes) triples in timestamp order.

        This is the exact information the paper's preprocessing consumes to
        build per-IP byte-count sequences (Figure 4).
        """
        return [(p.timestamp, p.src, p.size) for p in self.sorted_packets()]


class Sniffer:
    """A passive on-path observer that records packets into a capture.

    The sniffer can optionally be restricted to a set of observable IPs to
    model partial vantage points (e.g. an adversary who only sees traffic
    crossing one link).
    """

    def __init__(self, client_ip: IPAddress, observable_ips: Optional[Iterable[IPAddress]] = None) -> None:
        self.client_ip = client_ip
        self._observable = set(observable_ips) if observable_ips is not None else None
        self._capture: Optional[PacketCapture] = None

    @property
    def running(self) -> bool:
        return self._capture is not None

    def start(self) -> None:
        """Begin a new capture, discarding any previous unfinished one."""
        self._capture = PacketCapture(client_ip=self.client_ip)

    def observe(self, packet: Packet) -> None:
        """Record a packet if the sniffer is running and can see it."""
        if self._capture is None:
            return
        if self._observable is not None and not (
            packet.src in self._observable or packet.dst in self._observable
        ):
            return
        self._capture.add(packet)

    def stop(self) -> PacketCapture:
        """Stop capturing and return the completed capture."""
        if self._capture is None:
            raise RuntimeError("sniffer was not started")
        capture, self._capture = self._capture, None
        return capture
