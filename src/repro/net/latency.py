"""Latency and bandwidth model for the simulated network path.

Each server is reached over a path with its own base round-trip time and
jitter (Wikipedia's text and media servers vs. Github's CDN-balanced pool
behave differently), plus a serialization delay proportional to the bytes
transmitted.  Timing only affects the *ordering and interleaving* of
packets in a capture — the attack itself uses byte counts, but realistic
interleaving is exactly what makes per-IP sequences non-trivial.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np


@dataclass
class LatencyModel:
    """Per-path latency model.

    Parameters
    ----------
    base_rtt:
        Mean round-trip time in seconds.
    jitter:
        Standard deviation of the per-message latency noise (seconds).
    bandwidth:
        Path bandwidth in bytes per second, used for serialization delay.
    """

    base_rtt: float = 0.04
    jitter: float = 0.005
    bandwidth: float = 6.25e6  # ~50 Mbit/s

    def __post_init__(self) -> None:
        if self.base_rtt <= 0:
            raise ValueError("base_rtt must be positive")
        if self.jitter < 0:
            raise ValueError("jitter must be non-negative")
        if self.bandwidth <= 0:
            raise ValueError("bandwidth must be positive")

    def one_way_delay(self, size: int, rng: Optional[np.random.Generator] = None) -> float:
        """Delay for a message of ``size`` bytes to cross the path once."""
        if size < 0:
            raise ValueError("size must be non-negative")
        rng = rng if rng is not None else np.random.default_rng(0)
        noise = float(rng.normal(0.0, self.jitter)) if self.jitter > 0 else 0.0
        delay = self.base_rtt / 2.0 + size / self.bandwidth + noise
        return max(1e-6, delay)

    def round_trip(self, rng: Optional[np.random.Generator] = None) -> float:
        """A full round trip with jitter applied, used for handshakes."""
        rng = rng if rng is not None else np.random.default_rng(0)
        noise = float(rng.normal(0.0, self.jitter)) if self.jitter > 0 else 0.0
        return max(1e-6, self.base_rtt + noise)

    def scaled(self, factor: float) -> "LatencyModel":
        """A copy of the model with the RTT scaled (e.g. far-away regions)."""
        if factor <= 0:
            raise ValueError("factor must be positive")
        return LatencyModel(self.base_rtt * factor, self.jitter * factor, self.bandwidth)
