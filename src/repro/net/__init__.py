"""Packet-level network substrate.

The paper's adversary observes packets on the wire (tcpdump pcap files).
This package provides the equivalent simulated view: IP addresses and
endpoints, packets carrying ciphertext byte counts, a latency model, a
transmission channel that segments TLS records into MTU-sized packets (with
optional retransmissions), and a passive :class:`Sniffer` producing
:class:`PacketCapture` objects — the reproduction's stand-in for pcap.
"""

from repro.net.address import IPAddress, Endpoint, AddressAllocator
from repro.net.packet import Packet, Direction
from repro.net.latency import LatencyModel
from repro.net.capture import PacketCapture, Sniffer
from repro.net.channel import TransmissionChannel

__all__ = [
    "IPAddress",
    "Endpoint",
    "AddressAllocator",
    "Packet",
    "Direction",
    "LatencyModel",
    "PacketCapture",
    "Sniffer",
    "TransmissionChannel",
]
