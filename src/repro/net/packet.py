"""Packets as seen by the passive on-path adversary.

The adversary of Section III-A sees only what an encrypted-traffic sniffer
can see: timestamps, the IP pair and the size of the (encrypted) payload.
Payload contents are never modelled — by construction the reproduction's
attack can only exploit the same side-channel as the paper's.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field

from repro.net.address import IPAddress


class Direction(enum.Enum):
    """Direction of a packet relative to the monitored client."""

    OUTGOING = "outgoing"
    INCOMING = "incoming"

    def flip(self) -> "Direction":
        return Direction.INCOMING if self is Direction.OUTGOING else Direction.OUTGOING


@dataclass(frozen=True)
class Packet:
    """A single observed packet.

    ``size`` is the TLS ciphertext payload length in bytes (what the paper's
    byte-count sequences accumulate).  ``retransmission`` marks duplicated
    deliveries injected by the channel's loss model — from the adversary's
    point of view they are indistinguishable from fresh data, which is one
    of the artifacts the embedding model must be robust to.
    """

    timestamp: float
    src: IPAddress
    dst: IPAddress
    size: int
    retransmission: bool = False

    def __post_init__(self) -> None:
        if self.size < 0:
            raise ValueError("packet size must be non-negative")
        if self.timestamp < 0:
            raise ValueError("packet timestamp must be non-negative")

    def direction(self, client_ip: IPAddress) -> Direction:
        """Direction of the packet relative to ``client_ip``."""
        if self.src == client_ip:
            return Direction.OUTGOING
        if self.dst == client_ip:
            return Direction.INCOMING
        raise ValueError(f"packet {self.src}->{self.dst} does not involve client {client_ip}")

    def involves(self, ip: IPAddress) -> bool:
        return self.src == ip or self.dst == ip
