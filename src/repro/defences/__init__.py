"""Countermeasures against webpage fingerprinting (Section VII).

Record-level TLS 1.3 padding policies live in :mod:`repro.tls.padding`
(they change what goes on the wire); the defences here operate at the
trace level, the granularity the paper's countermeasure evaluation uses:
fixed-length (FL) padding of whole page loads, random padding, a simplified
adaptive-padding scheme, and per-website anonymity-set padding.  The
``overhead`` helpers quantify the bandwidth cost every defence pays.
"""

from repro.defences.base import TraceDefence
from repro.defences.fixed_length import FixedLengthPadding
from repro.defences.random_padding import RandomPaddingDefence
from repro.defences.adaptive_padding import AdaptivePaddingDefence
from repro.defences.anonymity_sets import AnonymitySetPadding
from repro.defences.overhead import bandwidth_overhead, defence_report, DefenceReport
from repro.defences.spec import DEFENCE_KINDS, DefenceConfigError, defence_from_spec

__all__ = [
    "TraceDefence",
    "FixedLengthPadding",
    "RandomPaddingDefence",
    "AdaptivePaddingDefence",
    "AnonymitySetPadding",
    "DEFENCE_KINDS",
    "DefenceConfigError",
    "bandwidth_overhead",
    "defence_from_spec",
    "defence_report",
    "DefenceReport",
]
