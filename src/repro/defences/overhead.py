"""Bandwidth-overhead accounting for defences.

The paper stresses that TLS-wide countermeasures must keep their bandwidth
overhead very low ("a protocol-level countermeasure with a 10 % bandwidth
overhead would result in an approximately equal increase in web-traffic
bandwidth worldwide"), so every defence evaluation reports the overhead
alongside the accuracy drop.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.traces.dataset import TraceDataset


def bandwidth_overhead(original: TraceDataset, defended: TraceDataset, *, log_scaled: bool = True) -> float:
    """Relative increase in total bytes caused by a defence.

    Returns ``(defended_bytes - original_bytes) / original_bytes``.
    """
    if original.data.shape != defended.data.shape:
        raise ValueError("datasets must have identical shapes to compare overhead")
    original_raw = np.expm1(original.data) if log_scaled else original.data
    defended_raw = np.expm1(defended.data) if log_scaled else defended.data
    original_total = float(original_raw.sum())
    defended_total = float(defended_raw.sum())
    if original_total <= 0:
        raise ValueError("original dataset carries no traffic")
    return (defended_total - original_total) / original_total


@dataclass
class DefenceReport:
    """Accuracy and overhead of one defence configuration."""

    defence_name: str
    overhead: float
    topn_accuracy_before: dict
    topn_accuracy_after: dict

    def accuracy_drop(self, n: int) -> float:
        """Absolute accuracy lost at top-``n`` because of the defence."""
        return self.topn_accuracy_before[n] - self.topn_accuracy_after[n]


def defence_report(
    defence_name: str,
    original: TraceDataset,
    defended: TraceDataset,
    accuracy_before: dict,
    accuracy_after: dict,
    *,
    log_scaled: bool = True,
) -> DefenceReport:
    """Bundle a defence evaluation into a :class:`DefenceReport`."""
    return DefenceReport(
        defence_name=defence_name,
        overhead=bandwidth_overhead(original, defended, log_scaled=log_scaled),
        topn_accuracy_before=dict(accuracy_before),
        topn_accuracy_after=dict(accuracy_after),
    )
