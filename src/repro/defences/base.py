"""Common machinery for trace-level defences.

Defences are dataset transforms: they take a :class:`TraceDataset` and
return a padded copy.  Because the preprocessing pipeline usually stores
log-scaled byte counts, every defence converts back to raw bytes before
padding and re-applies the scaling afterwards, so that a defended dataset
can be fed straight back into the fingerprinting pipeline.
"""

from __future__ import annotations

from typing import Tuple

import numpy as np

from repro.traces.dataset import TraceDataset


class TraceDefence:
    """Base class for trace-level padding defences."""

    def apply(self, dataset: TraceDataset, *, log_scaled: bool = True, seed: int = 0) -> TraceDataset:
        """Return a defended copy of ``dataset``.

        ``log_scaled`` must match the preprocessing of the dataset (the
        default :class:`~repro.traces.sequences.SequenceExtractor` applies
        ``log1p``).  The returned dataset uses the same scaling.
        """
        raw = self._to_raw(dataset.data, log_scaled)
        rng = np.random.default_rng(seed)
        padded = self._pad(raw, dataset, rng)
        if padded.shape != raw.shape:
            raise RuntimeError("defence produced an array of the wrong shape")
        if np.any(padded + 1e-9 < raw):
            raise RuntimeError("defence removed bytes; padding may only add data")
        return TraceDataset(
            data=self._from_raw(padded, log_scaled),
            labels=dataset.labels.copy(),
            class_names=list(dataset.class_names),
            website=dataset.website,
            tls_version=dataset.tls_version,
        )

    # ------------------------------------------------------------ to override
    def _pad(self, raw: np.ndarray, dataset: TraceDataset, rng: np.random.Generator) -> np.ndarray:
        """Return the padded raw byte counts (same shape as ``raw``)."""
        raise NotImplementedError

    @property
    def name(self) -> str:
        return type(self).__name__

    # -------------------------------------------------------------- scaling
    @staticmethod
    def _to_raw(data: np.ndarray, log_scaled: bool) -> np.ndarray:
        return np.expm1(data) if log_scaled else data.copy()

    @staticmethod
    def _from_raw(data: np.ndarray, log_scaled: bool) -> np.ndarray:
        return np.log1p(data) if log_scaled else data

    # --------------------------------------------------------------- helpers
    @staticmethod
    def trace_totals(raw: np.ndarray) -> np.ndarray:
        """Total bytes per trace, shape ``(n_traces,)``."""
        return raw.sum(axis=(1, 2))

    @staticmethod
    def sequence_totals(raw: np.ndarray) -> np.ndarray:
        """Total bytes per trace and sequence, shape ``(n_traces, n_sequences)``."""
        return raw.sum(axis=2)

    @staticmethod
    def add_to_last_active_position(raw: np.ndarray, deficits: np.ndarray) -> np.ndarray:
        """Add per-(trace, sequence) deficits at the end of each sequence.

        Padding a page load with dummy records appends traffic at the tail
        of the connection, which is what appending to the last position of
        the byte-count sequence models.
        """
        if deficits.shape != raw.shape[:2]:
            raise ValueError("deficits must have shape (n_traces, n_sequences)")
        if np.any(deficits < 0):
            raise ValueError("deficits must be non-negative")
        padded = raw.copy()
        padded[:, :, -1] += deficits
        return padded
