"""Random padding: add a random volume of dummy bytes to every trace.

Pironti et al. (cited by the paper) showed random-length padding to be a
weak countermeasure; it is included so the benches can confirm that result
against the adaptive adversary and contrast it with FL padding.
"""

from __future__ import annotations

import numpy as np

from repro.defences.base import TraceDefence
from repro.traces.dataset import TraceDataset


class RandomPaddingDefence(TraceDefence):
    """Append ``U(0, max_fraction) * trace_volume`` dummy bytes per sequence."""

    def __init__(self, max_fraction: float = 0.3) -> None:
        if max_fraction <= 0:
            raise ValueError("max_fraction must be positive")
        self.max_fraction = float(max_fraction)

    def _pad(self, raw: np.ndarray, dataset: TraceDataset, rng: np.random.Generator) -> np.ndarray:
        totals = self.sequence_totals(raw)
        fractions = rng.uniform(0.0, self.max_fraction, size=totals.shape)
        deficits = totals * fractions
        return self.add_to_last_active_position(raw, deficits)

    @property
    def name(self) -> str:
        return f"RandomPadding(max_fraction={self.max_fraction})"
