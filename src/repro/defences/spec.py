"""Build trace defences from declarative JSON-style specs.

The scenario engine (and anything else that configures defences from a
file, a CLI flag or a wire message) describes a defence as a plain dict —
``{"kind": "adaptive", "fill_probability": 0.4}`` — and this module turns
that into a :class:`~repro.defences.base.TraceDefence`.  A corrupt spec is
a *structured* :class:`DefenceConfigError` naming the field that is wrong,
never a bare ``TypeError`` from a constructor: a scenario run must reject
a bad config up front, not crash halfway through a replay.
"""

from __future__ import annotations

from typing import Dict, Optional

import numpy as np

from repro.defences.adaptive_padding import AdaptivePaddingDefence
from repro.defences.base import TraceDefence
from repro.defences.fixed_length import FixedLengthPadding
from repro.defences.random_padding import RandomPaddingDefence

DEFENCE_KINDS = ("none", "fixed-length", "random", "adaptive")


class DefenceConfigError(ValueError):
    """A defence spec that cannot be built, with the offending field.

    ``field`` names the spec key that is wrong (``"kind"`` when the defence
    kind itself is unknown), so error reports — and the scenario engine's
    structured rejections — can point at the exact knob to fix.
    """

    def __init__(self, field: str, message: str) -> None:
        super().__init__(message)
        self.field = field


def _number(spec: Dict, field: str, default: float, *, positive: bool = True) -> float:
    value = spec.get(field, default)
    if isinstance(value, bool) or not isinstance(value, (int, float)):
        raise DefenceConfigError(field, f"{field} must be a number, got {value!r}")
    if positive and value <= 0:
        raise DefenceConfigError(field, f"{field} must be positive, got {value!r}")
    return float(value)


def defence_from_spec(spec: Optional[Dict]) -> Optional[TraceDefence]:
    """A :class:`TraceDefence` from a declarative spec dict.

    ``None`` and ``{"kind": "none"}`` mean "no defence" and return ``None``.
    Recognised kinds and their knobs:

    * ``"fixed-length"`` — ``per_sequence`` (bool, default True),
      optional ``target_totals`` (list of per-sequence byte targets);
    * ``"random"`` — ``max_fraction`` (default 0.3);
    * ``"adaptive"`` — ``fill_probability`` (default 0.3), ``burst_scale``
      (default 0.5).

    Raises :class:`DefenceConfigError` for anything else.
    """
    if spec is None:
        return None
    if not isinstance(spec, dict):
        raise DefenceConfigError("kind", f"a defence spec must be a dict, got {type(spec).__name__}")
    kind = spec.get("kind")
    if kind == "none":
        return None
    if kind == "fixed-length":
        per_sequence = spec.get("per_sequence", True)
        if not isinstance(per_sequence, bool):
            raise DefenceConfigError(
                "per_sequence", f"per_sequence must be a bool, got {per_sequence!r}"
            )
        target_totals = spec.get("target_totals")
        if target_totals is not None:
            try:
                target_totals = np.asarray(target_totals, dtype=np.float64)
            except (TypeError, ValueError) as error:
                raise DefenceConfigError(
                    "target_totals", f"target_totals is not numeric: {error}"
                ) from error
            if target_totals.ndim != 1 or target_totals.size == 0 or np.any(target_totals < 0):
                raise DefenceConfigError(
                    "target_totals", "target_totals must be a non-empty 1-D list of byte counts"
                )
        return FixedLengthPadding(per_sequence=per_sequence, target_totals=target_totals)
    if kind == "random":
        return RandomPaddingDefence(max_fraction=_number(spec, "max_fraction", 0.3))
    if kind == "adaptive":
        fill_probability = _number(spec, "fill_probability", 0.3)
        if fill_probability > 1.0:
            raise DefenceConfigError(
                "fill_probability", f"fill_probability must be in (0, 1], got {fill_probability!r}"
            )
        return AdaptivePaddingDefence(
            fill_probability=fill_probability,
            burst_scale=_number(spec, "burst_scale", 0.5),
        )
    raise DefenceConfigError(
        "kind", f"unknown defence kind {kind!r}; expected one of {DEFENCE_KINDS}"
    )
