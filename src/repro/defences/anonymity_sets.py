"""Per-website anonymity-set padding (Section VII's proposed policy).

Instead of making every page of a website indistinguishable from every
other page (FL padding, expensive for large sites), the site operator
partitions pages into anonymity sets of a configurable minimum size and
pads only *within* each set: all pages of a set are padded to that set's
maximum.  Pages inside the same set become mutually indistinguishable by
volume while the bandwidth overhead stays bounded, because pages are
grouped with other pages of similar size.
"""

from __future__ import annotations

from typing import Dict, List

import numpy as np

from repro.defences.base import TraceDefence
from repro.traces.dataset import TraceDataset


class AnonymitySetPadding(TraceDefence):
    """Group classes into size-ordered anonymity sets and pad within sets."""

    def __init__(self, set_size: int = 10) -> None:
        if set_size < 2:
            raise ValueError("anonymity sets need at least two pages")
        self.set_size = int(set_size)

    def class_assignments(self, dataset: TraceDataset, *, log_scaled: bool = True) -> Dict[int, int]:
        """Map every class id to its anonymity-set id.

        Classes are sorted by their mean trace volume and grouped in runs of
        ``set_size`` so that similarly sized pages share a set (minimising
        the padding each member needs).
        """
        raw = self._to_raw(dataset.data, log_scaled)
        return self.class_assignments_from_raw(raw, dataset)

    def _pad(self, raw: np.ndarray, dataset: TraceDataset, rng: np.random.Generator) -> np.ndarray:
        assignments = self.class_assignments_from_raw(raw, dataset)
        totals = self.sequence_totals(raw)  # (n, s)
        padded_targets = np.zeros_like(totals)
        set_ids = np.array([assignments[int(label)] for label in dataset.labels])
        for set_id in np.unique(set_ids):
            members = set_ids == set_id
            padded_targets[members] = totals[members].max(axis=0)[None, :]
        deficits = np.maximum(0.0, padded_targets - totals)
        return self.add_to_last_active_position(raw, deficits)

    def class_assignments_from_raw(self, raw: np.ndarray, dataset: TraceDataset) -> Dict[int, int]:
        totals = self.trace_totals(raw)
        class_means = np.zeros(dataset.n_classes)
        for class_id in range(dataset.n_classes):
            mask = dataset.labels == class_id
            class_means[class_id] = totals[mask].mean() if mask.any() else 0.0
        order = np.argsort(class_means, kind="stable")
        return {int(class_id): rank // self.set_size for rank, class_id in enumerate(order)}

    @property
    def name(self) -> str:
        return f"AnonymitySetPadding(set_size={self.set_size})"
