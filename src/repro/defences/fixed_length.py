"""Fixed-length (FL) padding — the paper's main countermeasure.

"Given a set of target webpages, we padded all the traces to match the
length of the longest one" (Section VII).  Every defended trace therefore
carries the same total byte volume per direction, removing the strongest
identifying signal.  The cost is the bandwidth overhead of padding every
page up to the largest page of the site.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.defences.base import TraceDefence
from repro.traces.dataset import TraceDataset


class FixedLengthPadding(TraceDefence):
    """Pad every trace so per-sequence totals match the dataset maximum.

    Parameters
    ----------
    per_sequence:
        If True (default) each IP sequence is padded to that sequence's
        maximum total across the dataset (client traffic to the largest
        client total, server traffic to the largest server total).  If
        False only the overall trace total is equalised.
    target_totals:
        Optional explicit padding targets (bytes).  Useful when the defence
        is configured from a previously observed corpus rather than the
        dataset being padded — e.g. when padding live traffic.
    """

    def __init__(self, per_sequence: bool = True, target_totals: Optional[np.ndarray] = None) -> None:
        self.per_sequence = bool(per_sequence)
        self.target_totals = None if target_totals is None else np.asarray(target_totals, dtype=np.float64)

    def _pad(self, raw: np.ndarray, dataset: TraceDataset, rng: np.random.Generator) -> np.ndarray:
        if self.per_sequence:
            totals = self.sequence_totals(raw)  # (n, s)
            targets = self.target_totals if self.target_totals is not None else totals.max(axis=0)
            if targets.shape != (raw.shape[1],):
                raise ValueError(
                    f"target_totals must have one entry per sequence ({raw.shape[1]}), got {targets.shape}"
                )
            deficits = np.maximum(0.0, targets[None, :] - totals)
            return self.add_to_last_active_position(raw, deficits)

        trace_totals = self.trace_totals(raw)  # (n,)
        target = float(self.target_totals) if self.target_totals is not None else float(trace_totals.max())
        deficits_total = np.maximum(0.0, target - trace_totals)
        # All of the make-up traffic is attributed to the busiest sequence
        # (the server that serves the page body), which is where a real
        # deployment would emit dummy records.
        deficits = np.zeros(raw.shape[:2])
        busiest = raw.sum(axis=2).argmax(axis=1)
        deficits[np.arange(raw.shape[0]), busiest] = deficits_total
        return self.add_to_last_active_position(raw, deficits)

    @property
    def name(self) -> str:
        return "FixedLengthPadding(per_sequence)" if self.per_sequence else "FixedLengthPadding(total)"
