"""A simplified adaptive-padding defence (Juarez et al., WTF-PAD style).

Adaptive padding hides the *burst structure* of a page load rather than its
total volume: dummy records are injected into the quiet gaps between real
transmissions so that the timing/ordering pattern of bursts is obscured at
a much lower bandwidth cost than FL padding.  The reproduction models this
at the byte-count-sequence level: zero entries of a sequence (moments where
that IP was silent while others transmitted) receive dummy byte counts
sampled from the distribution of that trace's real bursts.
"""

from __future__ import annotations

import numpy as np

from repro.defences.base import TraceDefence
from repro.traces.dataset import TraceDataset


class AdaptivePaddingDefence(TraceDefence):
    """Fill silent positions with dummy bursts with probability ``fill_probability``."""

    def __init__(self, fill_probability: float = 0.3, burst_scale: float = 0.5) -> None:
        if not 0.0 < fill_probability <= 1.0:
            raise ValueError("fill_probability must be in (0, 1]")
        if burst_scale <= 0:
            raise ValueError("burst_scale must be positive")
        self.fill_probability = float(fill_probability)
        self.burst_scale = float(burst_scale)

    def _pad(self, raw: np.ndarray, dataset: TraceDataset, rng: np.random.Generator) -> np.ndarray:
        padded = raw.copy()
        n_traces, n_sequences, length = raw.shape
        for trace_index in range(n_traces):
            for sequence_index in range(n_sequences):
                sequence = padded[trace_index, sequence_index]
                real = sequence[sequence > 0]
                if real.size == 0:
                    continue
                mean_burst = float(real.mean()) * self.burst_scale
                silent = np.flatnonzero(sequence == 0)
                if silent.size == 0:
                    continue
                fill = rng.random(silent.size) < self.fill_probability
                dummy_sizes = rng.exponential(mean_burst, size=int(fill.sum()))
                sequence[silent[fill]] = np.maximum(1.0, dummy_sizes)
        return padded

    @property
    def name(self) -> str:
        return f"AdaptivePadding(p={self.fill_probability}, scale={self.burst_scale})"
