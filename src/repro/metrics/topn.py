"""Top-n accuracy metrics (the success measure of Section VI).

A top-n adversary wins the fingerprinting game when the true label appears
within its n highest-ranked predictions.  The helpers below compute the
accuracy for a set of ``n`` values, full accuracy-vs-n curves (the x-axes
of Figures 6-8 and 12-13) and the smallest ``n`` that reaches a target
accuracy (the quantity tabulated in Table II).
"""

from __future__ import annotations

from typing import Dict, List, Sequence

import numpy as np


def topn_accuracy_from_rankings(
    rankings: Sequence[Sequence[str]], true_labels: Sequence[str], ns: Sequence[int]
) -> Dict[int, float]:
    """Top-n accuracy given ranked label lists and the true labels."""
    if len(rankings) != len(true_labels):
        raise ValueError("rankings and true_labels must have the same length")
    if not rankings:
        raise ValueError("cannot compute accuracy over zero samples")
    results: Dict[int, float] = {}
    for n in ns:
        if n <= 0:
            raise ValueError("n values must be positive")
        hits = sum(1 for ranked, label in zip(rankings, true_labels) if label in list(ranked)[:n])
        results[int(n)] = hits / len(true_labels)
    return results


def accuracy_curve(guesses_needed: np.ndarray, max_n: int) -> List[float]:
    """Accuracy as a function of n, from per-sample guess ranks.

    ``guesses_needed[i]`` is the rank at which sample ``i``'s true label
    appears (1 = top prediction).  The returned list has ``max_n`` entries,
    entry ``n-1`` giving the top-n accuracy.
    """
    guesses = np.asarray(guesses_needed, dtype=np.float64)
    if guesses.size == 0:
        raise ValueError("guesses_needed is empty")
    if np.any(guesses < 1):
        raise ValueError("guess ranks start at 1")
    if max_n <= 0:
        raise ValueError("max_n must be positive")
    return [float(np.mean(guesses <= n)) for n in range(1, max_n + 1)]


def n_for_target_accuracy(guesses_needed: np.ndarray, target: float, max_n: int) -> int:
    """Smallest n whose top-n accuracy reaches ``target`` (Table II's n).

    Returns ``max_n`` if the target is never reached within ``max_n``
    guesses, mirroring an adversary who caps their guess budget.
    """
    if not 0.0 < target <= 1.0:
        raise ValueError("target must be in (0, 1]")
    curve = accuracy_curve(guesses_needed, max_n)
    for index, accuracy in enumerate(curve):
        if accuracy >= target:
            return index + 1
    return max_n
