"""Evaluation metrics: top-n accuracy, per-class guess distributions, reports."""

from repro.metrics.topn import topn_accuracy_from_rankings, accuracy_curve, n_for_target_accuracy
from repro.metrics.perclass import per_class_mean_guesses, guess_cdf, PerClassDistinguishability
from repro.metrics.reports import format_table, format_accuracy_table

__all__ = [
    "topn_accuracy_from_rankings",
    "accuracy_curve",
    "n_for_target_accuracy",
    "per_class_mean_guesses",
    "guess_cdf",
    "PerClassDistinguishability",
    "format_table",
    "format_accuracy_table",
]
