"""Plain-text report formatting for the benchmark harness.

The benches print the same rows/series the paper's tables and figures
report; these helpers render them as aligned monospace tables so the output
of ``pytest benchmarks/ --benchmark-only`` doubles as the experiment log
recorded in EXPERIMENTS.md.
"""

from __future__ import annotations

from typing import Dict, List, Mapping, Sequence


def format_table(headers: Sequence[str], rows: Sequence[Sequence[object]], title: str = "") -> str:
    """Render a list of rows as an aligned monospace table."""
    if not headers:
        raise ValueError("headers must be non-empty")
    string_rows = [[_cell(value) for value in row] for row in rows]
    for row in string_rows:
        if len(row) != len(headers):
            raise ValueError("every row must have one cell per header")
    widths = [len(h) for h in headers]
    for row in string_rows:
        for index, cell in enumerate(row):
            widths[index] = max(widths[index], len(cell))
    lines = []
    if title:
        lines.append(title)
    lines.append("  ".join(header.ljust(widths[index]) for index, header in enumerate(headers)))
    lines.append("  ".join("-" * width for width in widths))
    for row in string_rows:
        lines.append("  ".join(cell.ljust(widths[index]) for index, cell in enumerate(row)))
    return "\n".join(lines)


def format_accuracy_table(
    results: Mapping[str, Mapping[int, float]], ns: Sequence[int], title: str = ""
) -> str:
    """Render {scenario -> {n -> accuracy}} as a table with one row per scenario."""
    headers = ["scenario"] + [f"top-{n}" for n in ns]
    rows: List[List[object]] = []
    for scenario, accuracies in results.items():
        row: List[object] = [scenario]
        for n in ns:
            value = accuracies.get(int(n))
            row.append("-" if value is None else f"{value:.3f}")
        rows.append(row)
    return format_table(headers, rows, title=title)


def _cell(value: object) -> str:
    if isinstance(value, float):
        return f"{value:.3f}"
    if isinstance(value, bool):
        return "yes" if value else "no"
    return str(value)
