"""Per-class distinguishability metrics (Experiment 4, Figures 9-11).

The per-sample accuracy curves hide that some pages are much easier to
fingerprint than others.  Experiment 4 therefore looks at the *mean number
of guesses needed per class* and plots its cumulative distribution across
classes: a large mass at small guess counts means many pages are trivially
distinguishable, a long tail means some pages hide well.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Sequence, Tuple

import numpy as np


def per_class_mean_guesses(
    guesses_needed: np.ndarray, labels: Sequence[str]
) -> Dict[str, float]:
    """Mean guess rank per class (class label -> mean guesses)."""
    guesses = np.asarray(guesses_needed, dtype=np.float64)
    labels = [str(label) for label in labels]
    if guesses.shape[0] != len(labels):
        raise ValueError("guesses_needed and labels must be aligned")
    if guesses.size == 0:
        raise ValueError("no samples provided")
    sums: Dict[str, float] = {}
    counts: Dict[str, int] = {}
    for guess, label in zip(guesses, labels):
        sums[label] = sums.get(label, 0.0) + float(guess)
        counts[label] = counts.get(label, 0) + 1
    return {label: sums[label] / counts[label] for label in sums}


def guess_cdf(per_class_guesses: Dict[str, float], thresholds: Sequence[float]) -> List[float]:
    """Cumulative fraction of classes whose mean guesses fall below thresholds."""
    if not per_class_guesses:
        raise ValueError("per_class_guesses is empty")
    values = np.array(list(per_class_guesses.values()), dtype=np.float64)
    cdf = []
    for threshold in thresholds:
        if threshold <= 0:
            raise ValueError("thresholds must be positive")
        cdf.append(float(np.mean(values < threshold)))
    return cdf


@dataclass
class PerClassDistinguishability:
    """Summary of the per-class guess distribution for one scenario."""

    scenario: str
    per_class_guesses: Dict[str, float]

    @property
    def n_classes(self) -> int:
        return len(self.per_class_guesses)

    def fraction_below(self, guesses: float) -> float:
        """Fraction of classes distinguishable within ``guesses`` guesses."""
        return guess_cdf(self.per_class_guesses, [guesses])[0]

    def hardest_classes(self, count: int = 5) -> List[Tuple[str, float]]:
        """The classes needing the most guesses on average."""
        if count <= 0:
            raise ValueError("count must be positive")
        ranked = sorted(self.per_class_guesses.items(), key=lambda item: -item[1])
        return ranked[:count]

    def easiest_classes(self, count: int = 5) -> List[Tuple[str, float]]:
        if count <= 0:
            raise ValueError("count must be positive")
        ranked = sorted(self.per_class_guesses.items(), key=lambda item: item[1])
        return ranked[:count]

    def cdf(self, thresholds: Sequence[float]) -> List[float]:
        return guess_cdf(self.per_class_guesses, thresholds)
