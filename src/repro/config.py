"""Configuration objects for the adaptive fingerprinting system.

The values in :class:`EmbeddingHyperparameters` default to Table I of the
paper (the hyperparameters of the embedding neural network).  Experiment
runners use :class:`ExperimentScale` to pick between the paper's class
counts and a laptop-scale reduction that preserves the relative structure.
"""

from __future__ import annotations

from dataclasses import dataclass, field, asdict
from typing import Dict, List, Tuple


@dataclass(frozen=True)
class EmbeddingHyperparameters:
    """Hyperparameters of the embedding neural network (paper Table I).

    Attributes mirror the rows of Table I.  ``hidden_layer_sizes`` holds the
    four fully-connected hidden layers whose sizes the paper selected via
    grid search in the 100-2000 neuron range.
    """

    lstm_units: int = 30
    hidden_layer_sizes: Tuple[int, ...] = (256, 256, 128, 64)
    hidden_activation: str = "relu"
    embedding_dim: int = 32
    input_scale: float = 0.1
    output_activation: str = "leaky_relu"
    optimizer: str = "sgd"
    dropout: float = 0.1
    learning_rate: float = 0.001
    batch_size: int = 512
    distance_metric: str = "euclidean"
    contrastive_margin: float = 10.0

    def as_dict(self) -> Dict[str, object]:
        """Return the hyperparameters as a plain dictionary."""
        return asdict(self)


@dataclass(frozen=True)
class TrainingConfig:
    """Training-loop parameters for the siamese embedding model."""

    epochs: int = 10
    pairs_per_epoch: int = 4096
    pair_strategy: str = "random"
    positive_fraction: float = 0.5
    shuffle: bool = True
    seed: int = 0
    momentum: float = 0.0
    gradient_clip: float = 0.0
    verbose: bool = False


@dataclass(frozen=True)
class ClassifierConfig:
    """Configuration of the proximity (k-NN) classifier.

    The paper uses ``k = 250`` for all webpage-fingerprinting experiments;
    scaled-down runs use a proportionally smaller ``k``.
    """

    k: int = 250
    distance_metric: str = "euclidean"
    weighting: str = "uniform"


@dataclass(frozen=True)
class PreprocessingConfig:
    """Trace-preprocessing parameters (Section IV-A.1)."""

    max_sequences: int = 3
    sequence_length: int = 40
    quantization_step: int = 0
    aggregate_consecutive: bool = True
    log_scale: bool = True


@dataclass(frozen=True)
class ExperimentScale:
    """Scale of an experiment: class counts and samples per class.

    ``paper`` mirrors the counts in the paper; ``ci`` is a laptop-scale
    reduction preserving the relative structure (ratios between the class
    counts of the sweep, the 90/10 reference/test split and the disjoint
    Set A vs. Set C/D geometry of Figure 5).
    """

    name: str
    exp1_class_counts: Tuple[int, ...]
    exp2_class_counts: Tuple[int, ...]
    train_classes: int
    samples_per_class: int
    reference_fraction: float = 0.9
    github_class_counts: Tuple[int, ...] = (100, 250, 500)
    epochs: int = 10
    pairs_per_epoch: int = 4096
    knn_k: int = 250

    @property
    def reference_samples_per_class(self) -> int:
        return max(1, int(round(self.samples_per_class * self.reference_fraction)))

    @property
    def test_samples_per_class(self) -> int:
        return max(1, self.samples_per_class - self.reference_samples_per_class)


PAPER_SCALE = ExperimentScale(
    name="paper",
    exp1_class_counts=(500, 1000, 3000, 6000),
    exp2_class_counts=(500, 1000, 3000, 6000, 13000),
    train_classes=6000,
    samples_per_class=100,
    github_class_counts=(100, 250, 500),
    epochs=30,
    pairs_per_epoch=200_000,
    knn_k=250,
)

CI_SCALE = ExperimentScale(
    name="ci",
    exp1_class_counts=(10, 20, 40, 60),
    exp2_class_counts=(10, 20, 40, 60, 130),
    train_classes=60,
    samples_per_class=20,
    github_class_counts=(10, 25, 50),
    epochs=6,
    pairs_per_epoch=1500,
    knn_k=15,
)

SMOKE_SCALE = ExperimentScale(
    name="smoke",
    exp1_class_counts=(5, 8),
    exp2_class_counts=(5, 8),
    train_classes=8,
    samples_per_class=8,
    github_class_counts=(5,),
    epochs=2,
    pairs_per_epoch=200,
    knn_k=5,
)

SCALES: Dict[str, ExperimentScale] = {
    "paper": PAPER_SCALE,
    "ci": CI_SCALE,
    "smoke": SMOKE_SCALE,
}


def get_scale(name: str) -> ExperimentScale:
    """Look up an :class:`ExperimentScale` by name.

    Raises ``KeyError`` with the list of known scales if ``name`` is
    unknown, which gives a clearer error than a plain dictionary lookup.
    """
    try:
        return SCALES[name]
    except KeyError:
        known = ", ".join(sorted(SCALES))
        raise KeyError(f"unknown scale {name!r}; known scales: {known}") from None
