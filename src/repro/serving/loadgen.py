"""Open-world load generation and latency reporting for the serving bench.

A realistic query stream for the paper's deployment is a mix: mostly page
loads of monitored pages (embeddings near the reference clusters, since the
embedding model maps revisits of a page close together) plus a fraction of
loads of *unmonitored* pages, which land far from every reference cluster
(Section VI-C's open-world case).  :func:`open_world_mix` synthesises such
a stream from a reference corpus; :class:`LoadGenerator` replays it through
a :class:`~repro.serving.scheduler.BatchScheduler`, optionally firing an
adaptation callback mid-stream, and reports throughput and latency
percentiles.
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.core.classifier import Prediction
from repro.obs.metrics import Histogram
from repro.serving.protocol import FrontendClient, ProtocolError
from repro.serving.scheduler import BatchScheduler, QueryTicket
from repro.serving.sharded_store import ServingError

CLASS_MIXES = ("uniform", "zipf")


def _zipf_rows(
    reference_labels: Sequence[str],
    n_rows: int,
    zipf_s: float,
    rng: np.random.Generator,
) -> np.ndarray:
    """Reference-row sample with Zipf-distributed *class* popularity.

    Real victim traffic is head-heavy: a few monitored pages absorb most
    loads.  Classes are ranked in first-occurrence order and class ``r``
    (1-based) is drawn with probability ∝ ``r**-zipf_s``; the row within
    the class is uniform.  This is the hot-class traffic that makes shard
    skew (and therefore :meth:`ShardedReferenceStore.rebalance`) and
    least-loaded replica routing observable in the serve bench.
    """
    labels = np.asarray(list(reference_labels), dtype=object)
    classes = list(dict.fromkeys(labels.tolist()))
    ranks = np.arange(1, len(classes) + 1, dtype=np.float64)
    weights = ranks**-zipf_s
    weights /= weights.sum()
    rows_by_class = [np.flatnonzero(labels == name) for name in classes]
    chosen = rng.choice(len(classes), size=n_rows, p=weights)
    offsets = rng.random(n_rows)
    return np.array(
        [rows_by_class[c][int(offset * rows_by_class[c].size)] for c, offset in zip(chosen, offsets)],
        dtype=np.int64,
    )


def open_world_mix(
    reference_embeddings: np.ndarray,
    n_queries: int,
    *,
    unmonitored_fraction: float = 0.2,
    noise_scale: float = 0.1,
    outlier_shift: float = 25.0,
    revisit_fraction: float = 0.0,
    class_mix: str = "uniform",
    zipf_s: float = 1.2,
    reference_labels: Optional[Sequence[str]] = None,
    seed: int = 0,
    rng: Optional[np.random.Generator] = None,
) -> Tuple[np.ndarray, np.ndarray]:
    """Synthesise ``(queries, is_unmonitored)`` for an open-world replay.

    Monitored queries are reference embeddings perturbed by
    ``noise_scale``-scaled Gaussian noise (a revisit of a monitored page);
    unmonitored queries are references displaced by ``outlier_shift`` along
    a random direction (a page no reference lies near).  A
    ``revisit_fraction`` of the monitored queries are exact duplicates of
    earlier ones — the cache-friendly victim who reloads a page.

    ``class_mix`` picks which monitored pages get visited: ``"uniform"``
    samples reference rows uniformly, ``"zipf"`` (requires
    ``reference_labels``, one per reference row) makes class popularity
    follow a Zipf law with exponent ``zipf_s`` — the realistic hot-class
    traffic for rebalancing and replica-routing experiments.

    Every draw — rows, Zipf classes, noise, outlier directions, the final
    shuffle — comes from one explicit :class:`numpy.random.Generator`:
    pass ``rng`` to share a generator across calls (a scenario schedule
    drawing several mixes from one seeded stream), or ``seed`` alone to
    get the same stream on every platform.  Module-level NumPy random
    state is never touched, so replays are reproducible bit-for-bit.
    """
    references = np.atleast_2d(np.asarray(reference_embeddings, dtype=np.float64))
    if references.shape[0] == 0:
        raise ValueError("reference_embeddings must be non-empty")
    if not 0.0 <= unmonitored_fraction <= 1.0:
        raise ValueError("unmonitored_fraction must be in [0, 1]")
    if not 0.0 <= revisit_fraction < 1.0:
        raise ValueError("revisit_fraction must be in [0, 1)")
    if class_mix not in CLASS_MIXES:
        raise ValueError(f"unknown class_mix {class_mix!r}; expected one of {CLASS_MIXES}")
    if class_mix == "zipf":
        if zipf_s <= 0:
            raise ValueError("zipf_s must be positive")
        if reference_labels is None:
            raise ValueError("class_mix='zipf' needs reference_labels (one per reference row)")
        if len(reference_labels) != references.shape[0]:
            raise ValueError(
                f"got {len(reference_labels)} reference_labels for {references.shape[0]} references"
            )
    if rng is None:
        rng = np.random.default_rng(seed)
    elif not isinstance(rng, np.random.Generator):
        raise TypeError(f"rng must be a numpy.random.Generator, got {type(rng).__name__}")
    n_unmonitored = int(round(n_queries * unmonitored_fraction))
    n_monitored = n_queries - n_unmonitored

    if class_mix == "zipf":
        rows = _zipf_rows(reference_labels, n_monitored, zipf_s, rng)
    else:
        rows = rng.integers(0, references.shape[0], size=n_monitored)
    monitored = references[rows] + noise_scale * rng.standard_normal((n_monitored, references.shape[1]))
    n_revisits = int(round(n_monitored * revisit_fraction))
    if n_revisits and n_monitored > n_revisits:
        sources = rng.integers(0, n_monitored - n_revisits, size=n_revisits)
        monitored[n_monitored - n_revisits :] = monitored[sources]

    directions = rng.standard_normal((n_unmonitored, references.shape[1]))
    norms = np.linalg.norm(directions, axis=1, keepdims=True)
    norms[norms == 0.0] = 1.0
    unmonitored = (
        references[rng.integers(0, references.shape[0], size=n_unmonitored)]
        + outlier_shift * directions / norms
    )

    queries = np.concatenate([monitored, unmonitored], axis=0)
    is_unmonitored = np.zeros(n_queries, dtype=bool)
    is_unmonitored[n_monitored:] = True
    order = rng.permutation(n_queries)
    return queries[order], is_unmonitored[order]


@dataclass
class LatencyReport:
    """Throughput and latency percentiles of one replay."""

    n_queries: int
    duration_s: float
    throughput_qps: float
    p50_ms: float
    p99_ms: float
    mean_ms: float
    max_ms: float
    failed: int

    def as_dict(self) -> Dict[str, float]:
        """The report as a JSON-serialisable dict (bench snapshots)."""
        return {
            "n_queries": self.n_queries,
            "duration_s": self.duration_s,
            "throughput_qps": self.throughput_qps,
            "p50_ms": self.p50_ms,
            "p99_ms": self.p99_ms,
            "mean_ms": self.mean_ms,
            "max_ms": self.max_ms,
            "failed": self.failed,
        }


@dataclass
class ReplayResult:
    """Everything one :meth:`LoadGenerator.replay` produced."""

    predictions: List[Optional[Prediction]]
    tickets: List[QueryTicket]
    report: LatencyReport
    # The same latencies folded into a fixed-bucket obs histogram, so bench
    # sections can cross-check histogram-derived percentiles against the
    # exact ones (must agree within one bucket width) and merge replays.
    latency_histogram: Optional[Histogram] = field(default=None, repr=False)

    @property
    def failed(self) -> int:
        """How many queries failed during the replay (acceptance: zero)."""
        return self.report.failed


def report_from_latencies(
    latencies_s: np.ndarray, n_queries: int, duration_s: float, failed: int
) -> LatencyReport:
    """Throughput + p50/p95/p99 percentiles from raw per-query latencies."""
    latencies = np.asarray(latencies_s, dtype=np.float64)
    if latencies.size == 0:
        latencies = np.zeros(1)
    return LatencyReport(
        n_queries=n_queries,
        duration_s=duration_s,
        throughput_qps=n_queries / duration_s if duration_s > 0 else float("inf"),
        p50_ms=float(np.percentile(latencies, 50) * 1e3),
        p99_ms=float(np.percentile(latencies, 99) * 1e3),
        mean_ms=float(latencies.mean() * 1e3),
        max_ms=float(latencies.max() * 1e3),
        failed=failed,
    )


def report_from_histogram(
    histogram: Histogram, duration_s: float, failed: int, **labels: str
) -> LatencyReport:
    """A :class:`LatencyReport` estimated from an obs latency histogram.

    Percentiles interpolate within the histogram's fixed log-spaced
    buckets, so they agree with :func:`report_from_latencies` over the
    same samples to within one bucket width — the acceptance bound the
    serving bench asserts.  ``max_ms`` is the estimated 100th percentile
    (the top edge of the highest occupied bucket).
    """
    count = histogram.count(**labels)
    total_s = histogram.sum(**labels)
    return LatencyReport(
        n_queries=count,
        duration_s=duration_s,
        throughput_qps=count / duration_s if duration_s > 0 else float("inf"),
        p50_ms=float(histogram.quantile(0.50, **labels) * 1e3) if count else 0.0,
        p99_ms=float(histogram.quantile(0.99, **labels) * 1e3) if count else 0.0,
        mean_ms=float(total_s / count * 1e3) if count else 0.0,
        max_ms=float(histogram.quantile(1.0, **labels) * 1e3) if count else 0.0,
        failed=failed,
    )


def _latency_histogram(latencies_s: Sequence[float]) -> Histogram:
    """Fold client-side latencies into a standard obs latency histogram."""
    histogram = Histogram(
        "repro_client_latency_seconds", "Client-observed per-query latency."
    )
    for latency in latencies_s:
        histogram.observe(latency)
    return histogram


def latency_report(tickets: List[QueryTicket], duration_s: float, failed: int) -> LatencyReport:
    """A :class:`LatencyReport` over completed scheduler tickets."""
    latencies = np.array(
        [ticket.latency_s for ticket in tickets if ticket.latency_s is not None], dtype=np.float64
    )
    return report_from_latencies(latencies, len(tickets), duration_s, failed)


class LoadGenerator:
    """Replay a fixed query stream through a scheduler and time it."""

    def __init__(self, queries: np.ndarray) -> None:
        self.queries = np.atleast_2d(np.asarray(queries, dtype=np.float64))
        if self.queries.shape[0] == 0:
            raise ValueError("the query stream is empty")

    def replay(
        self,
        scheduler: BatchScheduler,
        *,
        mid_run: Optional[Callable[[], object]] = None,
        result_timeout_s: float = 60.0,
    ) -> ReplayResult:
        """Submit every query in order; fire ``mid_run`` at the halfway point.

        ``mid_run`` is where a rolling-adaptation callback goes (e.g.
        ``manager.replace_class``): it runs between two submissions while
        earlier queries may still be in flight, which is exactly the
        zero-downtime scenario the serving layer must survive.
        """
        halfway = self.queries.shape[0] // 2
        tickets: List[QueryTicket] = []
        start = time.monotonic()
        for position, query in enumerate(self.queries):
            if mid_run is not None and position == halfway:
                mid_run()
            tickets.append(scheduler.submit(query))
        if not scheduler.running:
            scheduler.flush()
        predictions: List[Optional[Prediction]] = []
        failed = 0
        for ticket in tickets:
            try:
                predictions.append(ticket.result(result_timeout_s))
            except ServingError:
                predictions.append(None)
                failed += 1
        duration = time.monotonic() - start
        return ReplayResult(
            predictions=predictions,
            tickets=tickets,
            report=latency_report(tickets, duration, failed),
            latency_histogram=_latency_histogram(
                [ticket.latency_s for ticket in tickets if ticket.latency_s is not None]
            ),
        )


# ------------------------------------------------------------- network replay
@dataclass
class NetworkReplayResult:
    """Everything one :meth:`NetworkLoadGenerator.replay` produced.

    ``predictions[i]`` is the ``(labels, scores)`` pair the server returned
    for query ``i`` (``None`` if its request failed); latencies are
    measured per request round-trip on the client side, so they include
    framing, the socket and the scheduler queue — the number a real
    deployment's tail is made of.
    """

    predictions: List[Optional[Tuple[List[str], List[float]]]]
    report: LatencyReport
    generations: List[int]
    # Client-side round-trip latencies in an obs histogram (same fixed
    # buckets as the server's repro_query_latency_seconds, so scraped
    # server percentiles and client percentiles are directly comparable).
    latency_histogram: Optional[Histogram] = field(default=None, repr=False)

    @property
    def failed(self) -> int:
        """How many queries failed during the replay (acceptance: zero)."""
        return self.report.failed


class NetworkLoadGenerator:
    """Replay a query stream against a front-end server over TCP.

    The stream is cut into request batches of ``request_batch_size``
    queries and spread round-robin over ``n_clients`` concurrent
    connections — several capture boxes shipping embeddings at once, which
    is the traffic shape that lets the server's replica router actually
    fan out.  ``top_n`` bounds the ranked labels requested per query (use
    the class count to compare full rankings against a baseline).
    """

    def __init__(
        self,
        queries: np.ndarray,
        *,
        request_batch_size: int = 32,
        top_n: int = 1,
        tenant: Optional[str] = None,
    ) -> None:
        self.queries = np.atleast_2d(np.asarray(queries, dtype=np.float64))
        if self.queries.shape[0] == 0:
            raise ValueError("the query stream is empty")
        if request_batch_size <= 0:
            raise ValueError("request_batch_size must be positive")
        if top_n <= 0:
            raise ValueError("top_n must be positive")
        self.request_batch_size = int(request_batch_size)
        self.top_n = int(top_n)
        # Route the whole stream to one tenant's deployment (None = default).
        self.tenant = tenant

    def replay(
        self,
        host: str,
        port: int,
        *,
        n_clients: int = 2,
        timeout_s: float = 60.0,
    ) -> NetworkReplayResult:
        """Drive the server from ``n_clients`` concurrent connections."""
        if n_clients <= 0:
            raise ValueError("n_clients must be positive")
        spans = [
            (start, min(start + self.request_batch_size, self.queries.shape[0]))
            for start in range(0, self.queries.shape[0], self.request_batch_size)
        ]
        predictions: List[Optional[Tuple[List[str], List[float]]]] = [None] * self.queries.shape[0]
        latencies: List[float] = []
        generations: List[int] = []
        failures = [0] * n_clients
        lock = threading.Lock()

        def run_client(client_id: int) -> None:
            try:
                client = FrontendClient(host, port, timeout_s=timeout_s)
            except OSError:
                with lock:
                    failures[client_id] += sum(
                        end - start for start, end in spans[client_id::n_clients]
                    )
                return
            try:
                for start, end in spans[client_id::n_clients]:
                    began = time.monotonic()
                    try:
                        body = client.classify(
                            self.queries[start:end], top_n=self.top_n, tenant=self.tenant
                        )
                    except (ProtocolError, OSError):
                        with lock:
                            failures[client_id] += end - start
                        continue
                    elapsed = time.monotonic() - began
                    decoded = [
                        (entry["labels"], entry["scores"]) for entry in body["predictions"]
                    ]
                    with lock:
                        latencies.append(elapsed)
                        generations.append(int(body.get("generation", -1)))
                        for offset, entry in enumerate(decoded):
                            predictions[start + offset] = entry
            finally:
                client.close()

        threads = [
            threading.Thread(target=run_client, args=(client_id,), daemon=True)
            for client_id in range(n_clients)
        ]
        began = time.monotonic()
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        duration = time.monotonic() - began
        return NetworkReplayResult(
            predictions=predictions,
            report=report_from_latencies(
                np.array(latencies), self.queries.shape[0], duration, sum(failures)
            ),
            generations=generations,
            latency_histogram=_latency_histogram(latencies),
        )
