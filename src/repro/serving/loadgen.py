"""Open-world load generation and latency reporting for the serving bench.

A realistic query stream for the paper's deployment is a mix: mostly page
loads of monitored pages (embeddings near the reference clusters, since the
embedding model maps revisits of a page close together) plus a fraction of
loads of *unmonitored* pages, which land far from every reference cluster
(Section VI-C's open-world case).  :func:`open_world_mix` synthesises such
a stream from a reference corpus; :class:`LoadGenerator` replays it through
a :class:`~repro.serving.scheduler.BatchScheduler`, optionally firing an
adaptation callback mid-stream, and reports throughput and latency
percentiles.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Tuple

import numpy as np

from repro.core.classifier import Prediction
from repro.serving.scheduler import BatchScheduler, QueryTicket
from repro.serving.sharded_store import ServingError


def open_world_mix(
    reference_embeddings: np.ndarray,
    n_queries: int,
    *,
    unmonitored_fraction: float = 0.2,
    noise_scale: float = 0.1,
    outlier_shift: float = 25.0,
    revisit_fraction: float = 0.0,
    seed: int = 0,
) -> Tuple[np.ndarray, np.ndarray]:
    """Synthesise ``(queries, is_unmonitored)`` for an open-world replay.

    Monitored queries are reference embeddings perturbed by
    ``noise_scale``-scaled Gaussian noise (a revisit of a monitored page);
    unmonitored queries are references displaced by ``outlier_shift`` along
    a random direction (a page no reference lies near).  A
    ``revisit_fraction`` of the monitored queries are exact duplicates of
    earlier ones — the cache-friendly victim who reloads a page.
    """
    references = np.atleast_2d(np.asarray(reference_embeddings, dtype=np.float64))
    if references.shape[0] == 0:
        raise ValueError("reference_embeddings must be non-empty")
    if not 0.0 <= unmonitored_fraction <= 1.0:
        raise ValueError("unmonitored_fraction must be in [0, 1]")
    if not 0.0 <= revisit_fraction < 1.0:
        raise ValueError("revisit_fraction must be in [0, 1)")
    rng = np.random.default_rng(seed)
    n_unmonitored = int(round(n_queries * unmonitored_fraction))
    n_monitored = n_queries - n_unmonitored

    rows = rng.integers(0, references.shape[0], size=n_monitored)
    monitored = references[rows] + noise_scale * rng.standard_normal((n_monitored, references.shape[1]))
    n_revisits = int(round(n_monitored * revisit_fraction))
    if n_revisits and n_monitored > n_revisits:
        sources = rng.integers(0, n_monitored - n_revisits, size=n_revisits)
        monitored[n_monitored - n_revisits :] = monitored[sources]

    directions = rng.standard_normal((n_unmonitored, references.shape[1]))
    norms = np.linalg.norm(directions, axis=1, keepdims=True)
    norms[norms == 0.0] = 1.0
    unmonitored = (
        references[rng.integers(0, references.shape[0], size=n_unmonitored)]
        + outlier_shift * directions / norms
    )

    queries = np.concatenate([monitored, unmonitored], axis=0)
    is_unmonitored = np.zeros(n_queries, dtype=bool)
    is_unmonitored[n_monitored:] = True
    order = rng.permutation(n_queries)
    return queries[order], is_unmonitored[order]


@dataclass
class LatencyReport:
    """Throughput and latency percentiles of one replay."""

    n_queries: int
    duration_s: float
    throughput_qps: float
    p50_ms: float
    p99_ms: float
    mean_ms: float
    max_ms: float
    failed: int

    def as_dict(self) -> Dict[str, float]:
        return {
            "n_queries": self.n_queries,
            "duration_s": self.duration_s,
            "throughput_qps": self.throughput_qps,
            "p50_ms": self.p50_ms,
            "p99_ms": self.p99_ms,
            "mean_ms": self.mean_ms,
            "max_ms": self.max_ms,
            "failed": self.failed,
        }


@dataclass
class ReplayResult:
    """Everything one :meth:`LoadGenerator.replay` produced."""

    predictions: List[Optional[Prediction]]
    tickets: List[QueryTicket]
    report: LatencyReport

    @property
    def failed(self) -> int:
        return self.report.failed


def latency_report(tickets: List[QueryTicket], duration_s: float, failed: int) -> LatencyReport:
    latencies = np.array(
        [ticket.latency_s for ticket in tickets if ticket.latency_s is not None], dtype=np.float64
    )
    if latencies.size == 0:
        latencies = np.zeros(1)
    return LatencyReport(
        n_queries=len(tickets),
        duration_s=duration_s,
        throughput_qps=len(tickets) / duration_s if duration_s > 0 else float("inf"),
        p50_ms=float(np.percentile(latencies, 50) * 1e3),
        p99_ms=float(np.percentile(latencies, 99) * 1e3),
        mean_ms=float(latencies.mean() * 1e3),
        max_ms=float(latencies.max() * 1e3),
        failed=failed,
    )


class LoadGenerator:
    """Replay a fixed query stream through a scheduler and time it."""

    def __init__(self, queries: np.ndarray) -> None:
        self.queries = np.atleast_2d(np.asarray(queries, dtype=np.float64))
        if self.queries.shape[0] == 0:
            raise ValueError("the query stream is empty")

    def replay(
        self,
        scheduler: BatchScheduler,
        *,
        mid_run: Optional[Callable[[], object]] = None,
        result_timeout_s: float = 60.0,
    ) -> ReplayResult:
        """Submit every query in order; fire ``mid_run`` at the halfway point.

        ``mid_run`` is where a rolling-adaptation callback goes (e.g.
        ``manager.replace_class``): it runs between two submissions while
        earlier queries may still be in flight, which is exactly the
        zero-downtime scenario the serving layer must survive.
        """
        halfway = self.queries.shape[0] // 2
        tickets: List[QueryTicket] = []
        start = time.monotonic()
        for position, query in enumerate(self.queries):
            if mid_run is not None and position == halfway:
                mid_run()
            tickets.append(scheduler.submit(query))
        if not scheduler.running:
            scheduler.flush()
        predictions: List[Optional[Prediction]] = []
        failed = 0
        for ticket in tickets:
            try:
                predictions.append(ticket.result(result_timeout_s))
            except ServingError:
                predictions.append(None)
                failed += 1
        duration = time.monotonic() - start
        return ReplayResult(
            predictions=predictions,
            tickets=tickets,
            report=latency_report(tickets, duration, failed),
        )
