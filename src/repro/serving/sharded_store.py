"""Sharded reference corpus: the storage layer of the serving subsystem.

A production deployment of the paper's fingerprinter holds reference
embeddings for thousands of monitored pages and must answer a continuous
query stream while the corpus churns.  :class:`ShardedReferenceStore`
partitions the monitored classes across ``n_shards`` independent
:class:`~repro.core.reference_store.ReferenceStore` + index pairs and
answers a query by scatter-gathering per-shard top-k candidates and merging
them by ``(distance, global id)``.

Two properties make the sharded store a drop-in for the flat one:

* **Global row ids.**  Every reference keeps the row number it would occupy
  in a single flat :class:`ReferenceStore` fed the same mutation sequence,
  and removals renumber ids exactly like the flat store's compaction.
  Merged ``search`` results are therefore directly comparable to — and
  bit-for-bit interchangeable with — a single-process exact baseline.
* **The flat read surface.**  ``len``, ``embedding_dim``, ``class_names``,
  ``label_codes``, ``class_counts`` … are all provided, so
  :class:`~repro.core.classifier.KNNClassifier` and
  :class:`~repro.core.openworld.OpenWorldDetector` work against a sharded
  store unchanged.

Shard scatter runs through a pluggable executor:
:class:`InProcessShardExecutor` answers serially in the calling process
(deterministic, zero overhead — the default), while
:class:`ProcessShardExecutor` fans shards out to worker processes that
attach each shard's payload — trained index state (e.g. IVF-PQ codes +
codebooks) plus the embedding matrix only when the index needs raw
vectors — as :mod:`repro.core.segment` ``RSG1`` segments, republished only
when a shard actually changes.  Each shard's ``storage_tier`` picks the
medium: ``shm`` keeps the segment resident in POSIX shared memory (hot
shards), ``mmap`` spills the identical bytes to a file that workers map
read-only, so cold shards are served straight off the page cache.
"""

from __future__ import annotations

import contextlib
import itertools
import mmap
import multiprocessing
import os
import shutil
import tempfile
import threading
import time
import zlib
from collections import Counter
from multiprocessing import shared_memory
from pathlib import Path
from typing import Callable, Dict, Iterable, List, Optional, Sequence, Set, Tuple, Union

import numpy as np
from scipy.spatial.distance import cdist

from repro.core.index import NearestNeighbourIndex, index_from_spec, top_k_by_distance
from repro.core.reference_store import LabelEncoding, ReferenceStore, validate_reference_batch
from repro.core.segment import read_segment, segment_size, write_segment, write_segment_file
from repro.obs import tracing as obs_tracing
from repro.obs.metrics import MetricsRegistry


class ServingError(RuntimeError):
    """A serving-layer component failed or was misused."""


_shard_uids = itertools.count()

#: Where a shard's published segment lives: ``"shm"`` copies it into POSIX
#: shared memory (hot shards, zero-syscall attach), ``"mmap"`` spills it to
#: a file that workers map read-only so the ADC scan reads codes straight
#: off the page cache (cold shards cost no dedicated resident memory).
STORAGE_TIERS = ("shm", "mmap")


class _Shard:
    """One partition: a reference store plus its local-row -> global-row map.

    ``uid`` identifies the shard across copy-on-write clones (a clone that
    *shares* the underlying store keeps the uid, so executor-side caches
    stay warm) and ``version`` counts mutations of the underlying store
    (bumped whenever the embedding matrix changes, so executors know when
    to republish).  ``tier`` picks the publication medium (see
    :data:`STORAGE_TIERS`).
    """

    __slots__ = ("store", "global_ids", "uid", "version", "tier")

    def __init__(
        self,
        store: ReferenceStore,
        global_ids: np.ndarray,
        *,
        uid: Optional[int] = None,
        version: int = 0,
        tier: str = "shm",
    ) -> None:
        self.store = store
        self.global_ids = global_ids
        self.uid = next(_shard_uids) if uid is None else uid
        self.version = version
        self.tier = tier


# --------------------------------------------------------------------- executors
def _search_shard_vectors(
    vectors: Optional[np.ndarray],
    index: NearestNeighbourIndex,
    queries: np.ndarray,
    k: int,
    metric: str,
    n_rows: Optional[int] = None,
) -> Tuple[np.ndarray, np.ndarray]:
    """Shard-local search with the same metric dispatch as ReferenceStore.

    ``vectors`` may be ``None`` when the shard was published as compressed
    index state only (an IVF-PQ shard with ``rerank == 0``); such shards can
    only answer their index's own metric.
    """
    if n_rows is None:
        n_rows = vectors.shape[0]
    k = min(int(k), n_rows)
    if metric == index.metric:
        return index.search(vectors, queries, k)
    if vectors is None:
        raise ServingError(
            f"shard was published without raw vectors and cannot answer metric {metric!r}"
        )
    distances = cdist(queries, vectors, metric=metric)
    return top_k_by_distance(distances, k)


_STATE_PREFIX = "state__"


def _shard_payload(store: ReferenceStore) -> Dict[str, np.ndarray]:
    """Arrays a shard publishes into its shared-memory segment.

    Always the trained index state (so workers never re-run k-means); the
    raw embedding matrix — in the store's storage dtype, so a float32 store
    publishes half the bytes — only when the index still needs it.  A
    trained IVF-PQ shard with ``rerank == 0`` therefore ships only uint8
    codes + codebooks: ~16-32x smaller segments, and republish after an
    adaptation swap is proportionally cheaper.
    """
    arrays = {
        f"{_STATE_PREFIX}{name}": np.ascontiguousarray(array)
        for name, array in store.index.state().items()
    }
    if store.index.needs_vectors:
        arrays["vectors"] = store.embeddings
    return arrays


class _ShmSegmentHandle:
    """Publisher-side handle of a hot-tier publication: one RSG1 segment
    written into a POSIX shared-memory block."""

    kind = "shm"
    __slots__ = ("_segment", "size")

    def __init__(self, arrays: Dict[str, np.ndarray]) -> None:
        self.size = segment_size(arrays)
        self._segment = shared_memory.SharedMemory(create=True, size=self.size)
        write_segment(self._segment.buf, arrays)

    @property
    def location(self) -> str:
        return self._segment.name

    @property
    def resident(self) -> bool:
        return True

    def unlink(self) -> None:
        try:
            self._segment.close()
            self._segment.unlink()
        except Exception:
            pass


class _FileSegmentHandle:
    """Publisher-side handle of a cold-tier publication: the same RSG1
    bytes spilled to a file that workers mmap read-only, so the shard's
    codes live in the page cache instead of dedicated shared memory."""

    kind = "mmap"
    __slots__ = ("_path", "size")

    def __init__(self, arrays: Dict[str, np.ndarray], path: Path) -> None:
        write_segment_file(path, arrays)
        self._path = path
        self.size = path.stat().st_size

    @property
    def location(self) -> str:
        return str(self._path)

    @property
    def resident(self) -> bool:
        return False

    def unlink(self) -> None:
        try:
            os.unlink(self._path)
        except OSError:
            pass


class _SegmentAttachment:
    """A worker-side attachment of one published segment (shm or mmap);
    ``arrays`` are read-only zero-copy views over the shared bytes."""

    __slots__ = ("arrays", "_closer")

    def __init__(self, arrays: Dict[str, np.ndarray], closer: object) -> None:
        self.arrays = arrays
        self._closer = closer

    def close(self) -> None:
        try:
            self._closer.close()
        except Exception:
            pass  # live views keep the mapping alive until GC


def _attach_segment(kind: str, location: str) -> _SegmentAttachment:
    """Attach a published segment by tier kind and parse it (CRC-checked
    once per attach; steady-state requests reuse the cached attachment)."""
    if kind == "shm":
        segment = shared_memory.SharedMemory(name=location)
        _untrack_shared_memory(segment)
        return _SegmentAttachment(read_segment(segment.buf), segment)
    if kind != "mmap":
        raise ServingError(f"unknown segment tier {kind!r}; expected one of {STORAGE_TIERS}")
    with open(location, "rb") as handle:
        mapped = mmap.mmap(handle.fileno(), 0, access=mmap.ACCESS_READ)
    try:
        arrays = read_segment(mapped)
    except BaseException:
        # The in-flight exception's traceback can still reference buffer
        # views of the mapping; GC releases it once the error is handled.
        with contextlib.suppress(BufferError):
            mapped.close()
        raise
    return _SegmentAttachment(arrays, mapped)


def _untrack_shared_memory(segment: shared_memory.SharedMemory) -> None:
    """Detach an *attached* segment from this process's resource tracker.

    On CPython <= 3.12 merely attaching registers the segment with the
    tracker, which would unlink the parent-owned segment when the worker
    exits; the parent alone manages segment lifetime.
    """
    try:
        from multiprocessing import resource_tracker

        resource_tracker.unregister(segment._name, "shared_memory")  # noqa: SLF001
    except Exception:
        pass


def _shard_worker(requests, responses) -> None:
    """Worker loop: answer shard searches against shared-memory payloads.

    Attachments (and the index restored over them) are cached per shard uid
    and refreshed only when the request carries a newer shard version, so a
    steady-state request ships nothing but the query block.  The published
    payload carries the trained index state, so a worker adopts centroids /
    codebooks / codes directly instead of re-running k-means per version.
    """
    cache: Dict[
        int, Tuple[int, _SegmentAttachment, Optional[np.ndarray], NearestNeighbourIndex, int]
    ] = {}
    while True:
        task = requests.get()
        if task is None:
            break
        request_id, uid, version, tier, location, n_rows, index_spec, queries, k, metric = task
        try:
            entry = cache.get(uid)
            if entry is None or entry[0] != version:
                # Attach and restore the *new* version before touching the
                # old attachment: if the attach or the state adoption
                # raises, the stale cache entry is evicted (never left
                # pointing at a closed segment) and the old mapping is
                # released; on success the old attachment is closed only
                # after the new one fully took over.
                try:
                    attachment = _attach_segment(tier, location)
                    arrays = attachment.arrays
                    vectors = arrays.get("vectors")
                    state = {
                        name[len(_STATE_PREFIX) :]: array
                        for name, array in arrays.items()
                        if name.startswith(_STATE_PREFIX)
                    }
                    index = index_from_spec(index_spec)
                    if state:
                        index.load_state(state)
                    elif vectors is not None:
                        index.rebuild(vectors)
                except BaseException:
                    stale = cache.pop(uid, None)
                    if stale is not None:
                        stale[1].close()
                    raise
                if entry is not None:
                    entry[1].close()
                cache[uid] = (version, attachment, vectors, index, n_rows)
            _, _, vectors, index, n_rows = cache[uid]
            scan_start = time.perf_counter()
            distances, ids = _search_shard_vectors(vectors, index, queries, k, metric, n_rows)
            scan_s = time.perf_counter() - scan_start
            # Piggyback the scan timing + kernel-dispatch flag on the
            # response tuple: shard-level histograms aggregate in the
            # parent with zero extra IPC.
            native = index.kernels_active()
            responses.put((request_id, distances, ids, None, scan_s, native))
        except Exception as error:  # keep the worker alive; surface the failure
            responses.put((request_id, None, None, f"{type(error).__name__}: {error}", 0.0, False))
    for _, attachment, _, _, _ in cache.values():
        attachment.close()


class InProcessShardExecutor:
    """Answer shard searches serially in the calling process.

    The deterministic default: useful for tests, CI and small shard counts
    where process fan-out overhead exceeds the search itself.
    """

    def search(
        self, shards: Sequence[_Shard], queries: np.ndarray, k: int, metric: str
    ) -> List[Tuple[np.ndarray, np.ndarray]]:
        """Per-shard ``(distances, local ids)``, answered serially in-process."""
        if not obs_tracing.enabled():
            return [shard.store.search(queries, k, metric=metric) for shard in shards]
        results = []
        for shard in shards:
            scan_start = time.perf_counter()
            results.append(shard.store.search(queries, k, metric=metric))
            obs_tracing.record(
                "shard_scan",
                time.perf_counter() - scan_start,
                shard=shard.uid,
                native=shard.store.index.kernels_active(),
            )
        return results

    def close(self) -> None:
        """Nothing owned; exists so every executor shares one lifecycle."""


class SegmentPublisher:
    """Owns the shared-memory publication of shard payloads.

    One publisher can back several :class:`ProcessShardExecutor` replicas
    (see :class:`ReplicaSet`): every replica's workers attach the *same*
    segment for a given shard version, so R read replicas cost one
    publication — the ~16-32x smaller IVF-PQ segments are shared, not
    copied.  All methods are thread-safe; replica searches run
    concurrently on different threads.

    Segments whose shard has not been queried for a while — a
    copy-on-write swap retires the old shard's uid for good — are unlinked
    automatically, so long-running adaptation churn does not accumulate
    shared memory.
    """

    # A published segment is evicted after this many search calls without
    # its shard appearing; in-flight snapshots re-publish on demand.
    _EVICT_AFTER_CALLS = 8

    def __init__(self, spill_dir: Union[str, os.PathLike, None] = None) -> None:
        # uid -> (version, handle | None); a ``None`` handle marks a slot
        # another thread is packing right now.
        self._published: Dict[int, Tuple[int, Optional[object]]] = {}
        self._last_used: Dict[int, int] = {}
        # uid -> number of in-flight searches using the segment.  A pinned
        # segment is never unlinked — not by eviction and not by a
        # republish at a newer version: a worker may sit between the
        # publish and its attach, and removing the name under it would
        # fail the attach.
        self._pins: Dict[int, int] = {}
        # uid -> superseded segment handles still pinned; unlinked when the
        # uid's last pin is released.
        self._retired: Dict[int, List[object]] = {}
        self._search_calls = 0
        self._cond = threading.Condition()
        self._closed = False
        # mmap-tier shards spill their segment files here; a publisher that
        # creates its own directory removes it on close.
        self._spill_dir: Optional[Path] = Path(spill_dir) if spill_dir is not None else None
        self._owns_spill_dir = False

    @staticmethod
    def _unlink(handle: object) -> None:
        handle.unlink()

    def _spill_path(self, uid: int, version: int) -> Path:
        with self._cond:
            if self._spill_dir is None:
                self._spill_dir = Path(tempfile.mkdtemp(prefix="repro-segments-"))
                self._owns_spill_dir = True
            spill_dir = self._spill_dir
        spill_dir.mkdir(parents=True, exist_ok=True)
        return spill_dir / f"shard-{uid}-v{version}.rsg"

    def _pack(self, shard: _Shard) -> object:
        """Serialise one shard's payload into its tier's medium."""
        arrays = _shard_payload(shard.store)
        tier = getattr(shard, "tier", "shm")
        if tier == "mmap":
            return _FileSegmentHandle(arrays, self._spill_path(shard.uid, shard.version))
        return _ShmSegmentHandle(arrays)

    def begin_search(self) -> None:
        """Tick the search clock the stale-segment eviction runs against."""
        with self._cond:
            self._search_calls += 1

    def publish(self, shard: _Shard) -> Tuple[str, str]:
        """The ``(tier kind, location)`` of a shard's RSG1 segment — a shm
        block name or a spilled file path — packing at most once per shard
        version and **pinning** the segment for the caller's search (pair
        every successful call with :meth:`release`).

        Packing runs *outside* the lock: one replica republishing a large
        shard after an adaptation swap must not stall the other replicas'
        scatters.  Racing publishers for the same ``(uid, version)`` wait
        on the packer instead of packing twice.
        """
        uid, version = shard.uid, shard.version
        with self._cond:
            while True:
                if self._closed:
                    raise ServingError("the segment publisher has been closed")
                self._last_used[uid] = self._search_calls
                entry = self._published.get(uid)
                if entry is not None and entry[0] == version:
                    if entry[1] is not None:
                        self._pins[uid] = self._pins.get(uid, 0) + 1
                        return entry[1].kind, entry[1].location
                    self._cond.wait()  # another thread is packing this version
                    continue
                if entry is not None and entry[1] is None:
                    # An older version is still packing; wait it out rather
                    # than racing it for the slot.
                    self._cond.wait()
                    continue
                old = entry
                self._published[uid] = (version, None)  # claim the slot
                break
        try:
            handle = self._pack(shard)
        except BaseException:
            with self._cond:
                if old is not None and not self._closed:
                    self._published[uid] = old  # keep serving the old version
                else:
                    self._published.pop(uid, None)
                    if old is not None and old[1] is not None:
                        # close() already ran and never saw the old segment
                        # (the dict held our pending slot): unlink it here.
                        old[1].unlink()
                self._cond.notify_all()
            raise
        with self._cond:
            if old is not None and old[1] is not None:
                if self._pins.get(uid, 0) > 0:
                    # A search pinned the superseded version and its worker
                    # may not have attached yet; unlink when the pins drop.
                    self._retired.setdefault(uid, []).append(old[1])
                else:
                    # Workers already attached keep the old mapping alive;
                    # unlinking only removes the name, which nobody will
                    # attach again.
                    self._unlink(old[1])
            if self._closed:
                handle.unlink()
                self._published.pop(uid, None)
                self._cond.notify_all()
                raise ServingError("the segment publisher has been closed")
            self._published[uid] = (version, handle)
            self._pins[uid] = self._pins.get(uid, 0) + 1
            self._cond.notify_all()
            return handle.kind, handle.location

    def release(self, uids: Iterable[int]) -> None:
        """Drop the pins a search took via :meth:`publish` (call once the
        scatter's responses are all collected)."""
        with self._cond:
            for uid in uids:
                remaining = self._pins.get(uid, 0) - 1
                if remaining > 0:
                    self._pins[uid] = remaining
                else:
                    self._pins.pop(uid, None)
                    for handle in self._retired.pop(uid, ()):
                        self._unlink(handle)

    def published_bytes(self) -> Dict[int, int]:
        """Segment size per published shard uid (monitoring: this is what
        the PQ/float32 publication path shrinks)."""
        with self._cond:
            return {
                uid: entry[1].size
                for uid, entry in self._published.items()
                if entry[1] is not None
            }

    def published_tier_bytes(self) -> Dict[str, int]:
        """Published segment bytes split by tier: ``"shm"`` is resident
        shared memory, ``"mmap"`` is file-backed page-cache bytes — the
        serve-bench reports both, so moving shards to the cold tier shows
        up as the resident number dropping."""
        with self._cond:
            totals = {"shm": 0, "mmap": 0}
            for _, handle in self._published.values():
                if handle is not None:
                    totals[handle.kind] += handle.size
            return totals

    def evict_stale(self) -> None:
        """Unlink segments of shards that stopped being queried.

        Pinned segments (a search between publish and worker attach) and
        slots still packing are always kept, so this is safe to call after
        every search, under load, from any replica's thread.
        """
        with self._cond:
            stale = [
                uid
                for uid, last in self._last_used.items()
                if self._search_calls - last > self._EVICT_AFTER_CALLS
                and self._pins.get(uid, 0) == 0
                and uid in self._published
                and self._published[uid][1] is not None
            ]
            for uid in stale:
                _, handle = self._published.pop(uid)
                del self._last_used[uid]
                self._unlink(handle)

    def close(self) -> None:
        """Unlink every published (and retired) segment, remove an owned
        spill directory, and refuse new work."""
        with self._cond:
            self._closed = True
            for _, handle in self._published.values():
                if handle is None:
                    continue  # the packing thread unlinks it when it lands
                self._unlink(handle)
            for retired in self._retired.values():
                for handle in retired:
                    self._unlink(handle)
            self._published.clear()
            self._last_used.clear()
            self._pins.clear()
            self._retired.clear()
            if self._owns_spill_dir and self._spill_dir is not None:
                shutil.rmtree(self._spill_dir, ignore_errors=True)
                self._spill_dir = None
                self._owns_spill_dir = False
            self._cond.notify_all()


class ProcessShardExecutor:
    """Scatter shard searches across worker processes.

    Each shard's payload — its trained index state, plus the embedding
    matrix (in the store's storage dtype) only when the index still needs
    raw vectors — is published at most once per shard version into a
    shared-memory segment (via a :class:`SegmentPublisher`, optionally
    shared across read replicas); workers attach read-only and keep the
    attachment (plus the restored index) cached until the version moves.
    Adaptation therefore republishes only the shard it touched — the
    copy-on-write story end to end.  A trained IVF-PQ shard with
    ``rerank == 0`` ships only uint8 codes + codebooks, so its segment is
    ~16-32x smaller than the raw float64 matrix at scale.

    Workers adopt the published index state directly (no per-worker
    k-means); only a stateless index (exact, or an untrained quantizer)
    falls back to rebuilding from the published vectors.

    ``search`` is serialised with a lock: the scatter shares one response
    queue, so two overlapping calls (e.g. the batch flusher thread and an
    adaptation swap recalibrating an open-world detector) must not
    interleave their collections.  Replicated deployments get concurrency
    *across* executors instead: a :class:`ReplicaSet` routes each call to
    one of R executors, whose locks are independent.
    """

    _RESPONSE_TIMEOUT_S = 120.0

    def __init__(
        self,
        n_workers: int = 2,
        *,
        start_method: Optional[str] = None,
        publisher: Optional[SegmentPublisher] = None,
    ) -> None:
        if n_workers <= 0:
            raise ValueError("n_workers must be positive")
        if start_method is None:
            start_method = "fork" if "fork" in multiprocessing.get_all_start_methods() else "spawn"
        context = multiprocessing.get_context(start_method)
        self._requests = [context.Queue() for _ in range(n_workers)]
        self._responses = context.Queue()
        self._workers = [
            context.Process(target=_shard_worker, args=(queue, self._responses), daemon=True)
            for queue in self._requests
        ]
        for worker in self._workers:
            worker.start()
        self._publisher = publisher if publisher is not None else SegmentPublisher()
        self._owns_publisher = publisher is None
        self._request_counter = 0
        self._search_lock = threading.Lock()
        self._closed = False

    # ------------------------------------------------------------- publication
    def published_bytes(self) -> Dict[int, int]:
        """Published segment size per shard uid."""
        return self._publisher.published_bytes()

    def published_tier_bytes(self) -> Dict[str, int]:
        """Published bytes split by storage tier (shm-resident vs mmap)."""
        return self._publisher.published_tier_bytes()

    # ------------------------------------------------------------------ search
    def search(
        self, shards: Sequence[_Shard], queries: np.ndarray, k: int, metric: str
    ) -> List[Tuple[np.ndarray, np.ndarray]]:
        """Scatter the query block to the workers, one task per shard, and
        collect per-shard ``(distances, local ids)`` (serialised; see above)."""
        with self._search_lock:
            if self._closed:
                raise ServingError("the shard executor has been closed")
            self._publisher.begin_search()
            pinned: List[int] = []
            try:
                return self._scatter(shards, queries, k, metric, pinned)
            finally:
                # Unpin this call's segments, then evict whatever churn
                # retired — safe under load because pinned segments (other
                # replicas' in-flight scatters) are never touched.
                self._publisher.release(pinned)
                self._publisher.evict_stale()

    def _scatter(
        self,
        shards: Sequence[_Shard],
        queries: np.ndarray,
        k: int,
        metric: str,
        pinned: List[int],
    ) -> List[Tuple[np.ndarray, np.ndarray]]:
        pending: Dict[int, int] = {}
        for position, shard in enumerate(shards):
            kind, location = self._publisher.publish(shard)
            pinned.append(shard.uid)
            request_id = self._request_counter
            self._request_counter += 1
            task = (
                request_id,
                shard.uid,
                shard.version,
                kind,
                location,
                len(shard.store),
                shard.store.index.spec(),
                queries,
                k,
                metric,
            )
            self._requests[position % len(self._requests)].put(task)
            pending[request_id] = position
        results: List[Optional[Tuple[np.ndarray, np.ndarray]]] = [None] * len(shards)
        failure: Optional[str] = None
        trace_spans = obs_tracing.enabled()
        while pending:
            try:
                request_id, distances, ids, error, scan_s, native = self._responses.get(
                    timeout=self._RESPONSE_TIMEOUT_S
                )
            except Exception as exc:
                raise ServingError(f"timed out waiting for shard workers: {exc!r}") from exc
            position = pending.pop(request_id, None)
            if position is None:  # stale response from an aborted call
                continue
            if error is not None:
                failure = failure or error
                continue
            if trace_spans:
                # The worker measured its own scan; replay it into the
                # parent's collector so shard histograms aggregate here.
                obs_tracing.record(
                    "shard_scan", scan_s, shard=shards[position].uid, native=bool(native)
                )
            results[position] = (distances, ids)
        if failure is not None:
            raise ServingError(f"shard worker failed: {failure}")
        return results  # type: ignore[return-value]

    # ------------------------------------------------------------------- close
    def close(self) -> None:
        """Stop the workers and (when owned) unlink the publication."""
        with self._search_lock:
            if self._closed:
                return
            self._closed = True
        for queue in self._requests:
            try:
                queue.put(None)
            except Exception:
                pass
        for worker in self._workers:
            worker.join(timeout=10.0)
            if worker.is_alive():
                worker.terminate()
        if self._owns_publisher:
            self._publisher.close()

    def __del__(self) -> None:  # best effort
        try:
            self.close()
        except Exception:
            pass


# --------------------------------------------------------------------- replicas
ROUTERS = ("round_robin", "least_loaded")


class ReplicaSet:
    """R read replicas of the shard scatter behind one router.

    Read scaling for the serving layer: every replica answers against the
    *same* logical store, so a query can go to any of them, and concurrent
    callers (the scheduler's batch executors, several front-end
    connections) fan out instead of serialising on one executor's lock.
    Process-backed replicas share one :class:`SegmentPublisher`: the
    published index segments (PQ codes + codebooks, or float32 embeddings)
    are attached by every replica's workers, so R replicas cost R worker
    pools but only *one* copy of the corpus in shared memory — which is
    what the ~16-32x smaller IVF-PQ segments make affordable.

    ``router`` picks the replica per call: ``"round_robin"`` rotates,
    ``"least_loaded"`` sends to the replica with the fewest in-flight
    searches (ties break to the lowest id, so single-threaded callers see
    deterministic routing).
    """

    def __init__(
        self,
        replicas: Sequence[object],
        *,
        router: str = "least_loaded",
        publisher: Optional[SegmentPublisher] = None,
    ) -> None:
        replicas = list(replicas)
        if not replicas:
            raise ValueError("a replica set needs at least one replica")
        if router not in ROUTERS:
            raise ValueError(f"unknown router {router!r}; expected one of {ROUTERS}")
        self.router = router
        self._replicas = replicas
        self._publisher = publisher
        self._inflight = [0] * len(replicas)
        self._routed = [0] * len(replicas)
        self._alive = [True] * len(replicas)
        self._next = 0
        self._lock = threading.Lock()

    # ------------------------------------------------------------ construction
    @classmethod
    def in_process(cls, n_replicas: int, *, router: str = "least_loaded") -> "ReplicaSet":
        """Thread-level replicas (no worker processes): each call scans in
        the calling thread, so concurrency comes from the callers."""
        if n_replicas <= 0:
            raise ValueError("n_replicas must be positive")
        return cls([InProcessShardExecutor() for _ in range(n_replicas)], router=router)

    @classmethod
    def processes(
        cls,
        n_replicas: int,
        *,
        n_workers: int = 2,
        router: str = "least_loaded",
        start_method: Optional[str] = None,
    ) -> "ReplicaSet":
        """Process-backed replicas attaching one shared publication."""
        if n_replicas <= 0:
            raise ValueError("n_replicas must be positive")
        publisher = SegmentPublisher()
        replicas = [
            ProcessShardExecutor(n_workers, start_method=start_method, publisher=publisher)
            for _ in range(n_replicas)
        ]
        return cls(replicas, router=router, publisher=publisher)

    # ------------------------------------------------------------------- state
    @property
    def n_replicas(self) -> int:
        """How many replica executors the router spreads across."""
        return len(self._replicas)

    @property
    def replicas(self) -> List[object]:
        """The replica executors (a copy; routing state stays internal)."""
        return list(self._replicas)

    def routed_counts(self) -> List[int]:
        """How many searches each replica has answered (router telemetry)."""
        with self._lock:
            return list(self._routed)

    def inflight_counts(self) -> List[int]:
        """Searches currently executing per replica (health telemetry: a
        replica whose depth only grows is stuck, one pinned at zero under
        load is starved)."""
        with self._lock:
            return list(self._inflight)

    def alive_flags(self) -> List[bool]:
        """Which replicas the router currently routes to (see :meth:`kill`)."""
        with self._lock:
            return list(self._alive)

    # ----------------------------------------------------------- fault injection
    def kill(self, position: int) -> None:
        """Drain one replica out of the router rotation.

        Drain semantics, not process murder: the router stops picking the
        replica for *new* searches while in-flight ones run to completion,
        which is exactly the zero-failed-queries contract a rolling restart
        (or the scenario engine's ``replica-flap`` fault) needs.  Killing
        the last live replica is refused — the router would have nowhere to
        send traffic and every query would fail.
        """
        with self._lock:
            if not 0 <= position < len(self._replicas):
                raise ServingError(
                    f"replica {position} does not exist (have {len(self._replicas)})"
                )
            if self._alive[position] and sum(self._alive) == 1:
                raise ServingError("cannot kill the last live replica")
            self._alive[position] = False

    def restore(self, position: int) -> None:
        """Bring a drained replica back into the router rotation."""
        with self._lock:
            if not 0 <= position < len(self._replicas):
                raise ServingError(
                    f"replica {position} does not exist (have {len(self._replicas)})"
                )
            self._alive[position] = True

    def published_bytes(self) -> Dict[int, int]:
        """Segment bytes of the shared publication (empty for in-process
        replicas, which attach nothing)."""
        if self._publisher is not None:
            return self._publisher.published_bytes()
        for replica in self._replicas:
            reader = getattr(replica, "published_bytes", None)
            if reader is not None:
                return reader()
        return {}

    def published_tier_bytes(self) -> Dict[str, int]:
        """Published bytes by storage tier (zeros for in-process replicas)."""
        if self._publisher is not None:
            return self._publisher.published_tier_bytes()
        for replica in self._replicas:
            reader = getattr(replica, "published_tier_bytes", None)
            if reader is not None:
                return reader()
        return {"shm": 0, "mmap": 0}

    # ------------------------------------------------------------------ search
    def _acquire(self) -> int:
        with self._lock:
            live = [idx for idx in range(len(self._replicas)) if self._alive[idx]]
            if not live:
                raise ServingError("no live replicas to route to")
            if self.router == "round_robin":
                position = live[self._next % len(live)]
                self._next += 1
            else:
                position = min(live, key=lambda idx: (self._inflight[idx], idx))
            self._inflight[position] += 1
            self._routed[position] += 1
            return position

    def search(
        self, shards: Sequence[_Shard], queries: np.ndarray, k: int, metric: str
    ) -> List[Tuple[np.ndarray, np.ndarray]]:
        """Route one scatter to a replica picked by the configured router."""
        position = self._acquire()
        try:
            # Eviction of retired segments happens inside the replica's own
            # search (pin-protected in the shared publisher), so sustained
            # load cannot starve it.
            return self._replicas[position].search(shards, queries, k, metric)
        finally:
            with self._lock:
                self._inflight[position] -= 1

    # ------------------------------------------------------------------- close
    def close(self) -> None:
        """Close every replica and the shared publication (if any)."""
        for replica in self._replicas:
            close = getattr(replica, "close", None)
            if close is not None:
                try:
                    close()
                except Exception:
                    pass
        if self._publisher is not None:
            self._publisher.close()


# ----------------------------------------------------------------- sharded store
ASSIGNMENT_POLICIES = ("hash", "balanced")


class ShardedReferenceStore:
    """Monitored classes partitioned across per-shard store+index pairs.

    Classes (never individual references) are the unit of placement, so an
    adaptation step touches exactly one shard.  ``assignment`` picks the
    shard for a class never seen before: ``"hash"`` is stable across
    deployments (CRC32 of the label), ``"balanced"`` greedily places new
    classes on the currently smallest shard.  ``replace_class`` keeps a
    class pinned to its shard, so churn never migrates data between shards.
    """

    def __init__(
        self,
        embedding_dim: int,
        n_shards: int = 2,
        *,
        assignment: str = "hash",
        index_factory: Optional[Callable[[], NearestNeighbourIndex]] = None,
        executor: Optional[object] = None,
        storage_dtype: str = "float64",
        storage_tier: str = "shm",
    ) -> None:
        if embedding_dim <= 0:
            raise ValueError("embedding_dim must be positive")
        if n_shards <= 0:
            raise ValueError("n_shards must be positive")
        if assignment not in ASSIGNMENT_POLICIES:
            raise ValueError(
                f"unknown assignment policy {assignment!r}; expected one of {ASSIGNMENT_POLICIES}"
            )
        if storage_tier not in STORAGE_TIERS:
            raise ValueError(
                f"unknown storage tier {storage_tier!r}; expected one of {STORAGE_TIERS}"
            )
        self.embedding_dim = int(embedding_dim)
        self.n_shards = int(n_shards)
        self.assignment = assignment
        self.storage_dtype = np.dtype(storage_dtype).name
        self.storage_tier = storage_tier
        self.index_factory: Callable[[], NearestNeighbourIndex] = (
            index_factory if index_factory is not None else lambda: index_from_spec(None)
        )
        self._executor = executor if executor is not None else InProcessShardExecutor()
        self._shards: List[_Shard] = [
            _Shard(
                ReferenceStore(
                    self.embedding_dim,
                    index=self.index_factory(),
                    storage_dtype=self.storage_dtype,
                ),
                np.empty(0, dtype=np.int64),
                tier=self.storage_tier,
            )
            for _ in range(self.n_shards)
        ]
        self._class_shard: Dict[str, int] = {}
        # The global ledger: the same label encoding a flat store fed the
        # identical mutation sequence would hold (see reference_store.py).
        self._encoding = LabelEncoding()
        self._codes: np.ndarray = np.empty(0, dtype=np.int64)
        self._size = 0
        self._generation = 0
        self._obs: Optional[Dict[str, object]] = None

    # ------------------------------------------------------------ construction
    @classmethod
    def from_reference_store(
        cls,
        store: ReferenceStore,
        n_shards: int = 2,
        *,
        assignment: str = "hash",
        index_factory: Optional[Callable[[], NearestNeighbourIndex]] = None,
        executor: Optional[object] = None,
        storage_dtype: Optional[str] = None,
        storage_tier: str = "shm",
    ) -> "ShardedReferenceStore":
        """Shard an existing flat store (global ids == its current row ids).

        The flat store's storage dtype carries over unless overridden.
        """
        if index_factory is None:
            spec = store.index.spec()
            index_factory = lambda: index_from_spec(spec)  # noqa: E731
        sharded = cls(
            store.embedding_dim,
            n_shards,
            assignment=assignment,
            index_factory=index_factory,
            executor=executor,
            storage_dtype=storage_dtype
            if storage_dtype is not None
            else getattr(store, "storage_dtype", "float64"),
            storage_tier=storage_tier,
        )
        if len(store):
            sharded.add(store.embeddings, list(store.labels))
        return sharded

    # ------------------------------------------------------------------- state
    def __len__(self) -> int:
        return self._size

    @property
    def generation(self) -> int:
        """Monotonic mutation counter (cache keys, staleness checks)."""
        return self._generation

    @property
    def executor(self) -> object:
        """The shard-scatter executor (in-process, processes or replicas)."""
        return self._executor

    @property
    def class_names(self) -> List[str]:
        """Code -> label mapping (codes are first-occurrence ordered)."""
        return list(self._encoding.names)

    @property
    def classes(self) -> List[str]:
        """Distinct class labels in insertion order."""
        return list(self._encoding.names)

    @property
    def n_classes(self) -> int:
        """How many classes are currently monitored."""
        return len(self._encoding.names)

    @property
    def label_codes(self) -> np.ndarray:
        """Per-row integer class codes in *global* row order (read-only)."""
        view = self._codes[: self._size]
        view.flags.writeable = False
        return view

    @property
    def labels(self) -> np.ndarray:
        """Per-row labels in *global* row order (decoded object array)."""
        names = np.array(self._encoding.names, dtype=object)
        return names[self._codes[: self._size]] if self._size else np.empty(0, dtype=object)

    @property
    def embeddings(self) -> np.ndarray:
        """The (N, dim) matrix in *global* row order (gathered; O(N) copy)."""
        out = np.empty((self._size, self.embedding_dim), dtype=self.storage_dtype)
        for shard in self._shards:
            if len(shard.store):
                out[shard.global_ids] = shard.store.embeddings
        out.flags.writeable = False
        return out

    def memory_bytes(self) -> int:
        """Resident bytes across shards (buffers + index side structures)."""
        return sum(shard.store.memory_bytes() for shard in self._shards)

    def class_counts(self) -> Dict[str, int]:
        """Reference count per class label."""
        return {
            name: int(self._encoding.counts[code])
            for code, name in enumerate(self._encoding.names)
        }

    def has_class(self, label: str) -> bool:
        """Whether any references carry ``label``."""
        return label in self._encoding.index

    def __contains__(self, label: str) -> bool:
        return self.has_class(label)

    def index_spec(self) -> Dict[str, object]:
        """The per-shard index spec (every shard shares the factory).

        Part of the scheduler's cache key: two deployments with different
        index configurations (e.g. ivfpq ``rerank=0`` vs ``exact``) must
        never share cached predictions, even at equal generation numbers.
        """
        return self._shards[0].store.index.spec()

    def attach_metrics(self, registry: MetricsRegistry) -> None:
        """Register the store's search instruments on ``registry``.

        Until attached, ``search`` pays nothing for telemetry (copy-on-write
        clones inherit the attachment, so one call covers every swapped
        store).  Registers: ``repro_store_searches_total``,
        ``repro_store_scatter_seconds``, ``repro_store_merge_seconds`` and
        ``repro_store_shard_scan_seconds{native=yes|no}`` — the shard-scan
        histogram aggregates the per-call timings worker processes
        piggyback on their scatter responses.
        """
        self._obs = {
            "searches": registry.counter(
                "repro_store_searches_total", "Merged scatter-gather searches answered."
            ),
            "scatter": registry.histogram(
                "repro_store_scatter_seconds",
                "Time scattering one query block across the live shards.",
            ),
            "merge": registry.histogram(
                "repro_store_merge_seconds",
                "Time merging per-shard candidates by (distance, global id).",
            ),
            "shard_scan": registry.histogram(
                "repro_store_shard_scan_seconds",
                "Per-shard scan time, split by native-kernel vs NumPy-fallback dispatch.",
                labels=("native",),
            ),
        }

    def kernel_status(self) -> Dict[str, object]:
        """Native ADC-kernel status of the scan path the shards run.

        Merges the process-global compiler/build state
        (:func:`repro.core.kernels.kernel_status`) with the per-index
        ``native_kernels`` mode from the shard spec, so ``repro serve``
        operators can see from ``info``/``stats`` whether queries actually
        hit the fused C scan or the NumPy fallback.  Worker processes
        inherit the mode through the environment, so the front-end
        process's view is authoritative for the whole replica set.
        """
        from repro.core.kernels import kernel_status, resolve_mode

        status = dict(kernel_status())
        index_mode = self.index_spec().get("native_kernels")
        if index_mode is not None:
            status["index_mode"] = index_mode
            status["resolved_mode"] = resolve_mode(str(index_mode))
            status["active"] = bool(status["active"]) and status["resolved_mode"] != "off"
        return status

    def shard_sizes(self) -> List[int]:
        """Row count per shard (the rebalance trigger reads the spread)."""
        return [len(shard.store) for shard in self._shards]

    def shard_spread(self) -> float:
        """Row-count skew across shards: ``(max - min) / mean`` (0 when empty).

        The rebalance trigger: hot-class churn (one page gaining references
        while its shardmates shrink) drives this up, and with it the tail
        latency of every scatter — the merge waits for the largest shard.
        """
        sizes = self.shard_sizes()
        total = sum(sizes)
        if total == 0:
            return 0.0
        return (max(sizes) - min(sizes)) / (total / len(sizes))

    def shard_memory_bytes(self) -> List[int]:
        """Resident bytes per shard (embedding buffer + index structures)."""
        return [shard.store.memory_bytes() for shard in self._shards]

    def shard_tiers(self) -> List[str]:
        """The storage tier each shard publishes through (see
        :data:`STORAGE_TIERS`)."""
        return [shard.tier for shard in self._shards]

    def set_storage_tier(self, tier: str, shard_ids: Optional[Iterable[int]] = None) -> None:
        """Move shards between the hot (``shm``) and cold (``mmap``) tiers.

        Applies to every shard unless ``shard_ids`` narrows it.  Changed
        shards bump their version, so process executors republish through
        the new medium on the next scatter; results are bit-identical
        either way — only where the segment bytes live changes.
        """
        if tier not in STORAGE_TIERS:
            raise ValueError(f"unknown storage tier {tier!r}; expected one of {STORAGE_TIERS}")
        targets = range(self.n_shards) if shard_ids is None else shard_ids
        changed = False
        for shard_id in targets:
            shard = self._shards[shard_id]
            if shard.tier != tier:
                shard.tier = tier
                shard.version += 1
                changed = True
        if shard_ids is None:
            self.storage_tier = tier
        if changed:
            self._generation += 1

    def published_tier_bytes(self) -> Dict[str, int]:
        """Published segment bytes by tier, from the executor's publisher
        (zeros when the executor publishes nothing, e.g. in-process)."""
        reader = getattr(self._executor, "published_tier_bytes", None)
        return reader() if reader is not None else {"shm": 0, "mmap": 0}

    def _place(self, label: str, sizes: Sequence[int]) -> int:
        """Pick a shard for a class not placed yet (the single policy site)."""
        if self.assignment == "hash":
            return zlib.crc32(str(label).encode("utf-8")) % self.n_shards
        return int(np.argmin(sizes))

    def shard_of(self, label: str) -> int:
        """Which shard holds (or would hold) a class's references."""
        existing = self._class_shard.get(label)
        if existing is not None:
            return existing
        return self._place(label, [len(shard.store) for shard in self._shards])

    def class_embeddings(self, label: str) -> np.ndarray:
        """The references of one class (from the shard that owns it)."""
        shard_id = self._class_shard.get(label)
        if shard_id is None:
            raise KeyError(f"no references with label {label!r}")
        return self._shards[shard_id].store.class_embeddings(label)

    # ---------------------------------------------------------------- mutation
    def add(self, embeddings: np.ndarray, labels: Iterable[str]) -> None:
        """Append references; whole classes are routed to their shard."""
        embeddings, labels = validate_reference_batch(embeddings, labels, self.embedding_dim)
        n_new = embeddings.shape[0]
        if n_new == 0:
            return
        # Route any new classes (first-occurrence order keeps "balanced"
        # deterministic; counts of rows arriving in this same call are part
        # of the balance).
        occurrences = Counter(labels)
        planned = np.array([len(shard.store) for shard in self._shards], dtype=np.int64)
        for label in dict.fromkeys(labels):
            if label not in self._class_shard:
                self._class_shard[label] = self._place(label, planned)
            planned[self._class_shard[label]] += occurrences[label]

        codes = self._encoding.encode(labels)
        global_ids = np.arange(self._size, self._size + n_new, dtype=np.int64)
        self._codes = np.concatenate([self._codes, codes])
        self._size += n_new

        shard_of_row = np.array([self._class_shard[label] for label in labels], dtype=np.int64)
        for shard_id in np.unique(shard_of_row):
            mask = shard_of_row == shard_id
            shard = self._shards[shard_id]
            shard.store.add(
                embeddings[mask], [label for label, hit in zip(labels, mask) if hit]
            )
            shard.global_ids = np.concatenate([shard.global_ids, global_ids[mask]])
            shard.version += 1
        self._generation += 1

    def remove_class(self, label: str) -> int:
        """Drop a class; global ids renumber exactly like flat compaction."""
        code = self._encoding.code_of(label)
        if code is None:
            raise KeyError(f"no references with label {label!r}")
        shard = self._shards[self._class_shard[label]]
        local_code = shard.store.class_names.index(label)
        local_kept = (shard.store.label_codes != local_code).copy()
        removed_global_ids = np.sort(shard.global_ids[~local_kept])
        shard.store.remove_class(label)
        shard.global_ids = shard.global_ids[local_kept]
        shard.version += 1

        global_kept = self._codes != code
        new_codes = self._codes[global_kept]
        new_codes[new_codes > code] -= 1
        self._codes = new_codes
        removed = self._size - int(global_kept.sum())
        self._size = int(global_kept.sum())
        self._encoding.drop(code)
        del self._class_shard[label]

        for other in self._shards:
            if other.global_ids.size:
                other.global_ids = other.global_ids - np.searchsorted(
                    removed_global_ids, other.global_ids
                )
        self._generation += 1
        return removed

    def replace_class(self, label: str, embeddings: np.ndarray) -> None:
        """Swap one class's references (stays on its shard — the paper's
        adaptation step, sharded)."""
        label = str(label)
        embeddings = np.atleast_2d(np.asarray(embeddings, dtype=np.float64))
        pinned = self._class_shard.get(label)
        if label in self._encoding.index:
            self.remove_class(label)
        if pinned is not None:
            self._class_shard[label] = pinned
        self.add(embeddings, [label] * embeddings.shape[0])

    # ----------------------------------------------------------- requantization
    def drift_ratio(self) -> float:
        """The worst per-shard quantizer drift ratio (1.0 = no drift signal);
        see :meth:`repro.core.index.IVFPQIndex.drift_ratio`."""
        ratios = [
            shard.store.index.drift_ratio() for shard in self._shards if len(shard.store)
        ]
        return max(ratios) if ratios else 1.0

    def retrain_needed(self, *, threshold: float = 1.5, min_samples: int = 64) -> bool:
        """Whether any shard's quantizer has drifted past ``threshold``."""
        return any(
            shard.store.retrain_needed(threshold=threshold, min_samples=min_samples)
            for shard in self._shards
            if len(shard.store)
        )

    def requantize(self, *, sample_size: Optional[int] = None) -> None:
        """Re-train every shard's quantizer in place (serving deployments
        should prefer :meth:`with_requantized` behind a snapshot swap)."""
        for shard in self._shards:
            if len(shard.store):
                shard.store.requantize(sample_size=sample_size)
                shard.version += 1
        self._generation += 1

    def with_requantized(
        self, *, sample_size: Optional[int] = None
    ) -> "ShardedReferenceStore":
        """A copy-on-write clone with every shard's quantizer re-trained on
        its current rows (``self`` untouched).

        Each non-empty shard is materialised — its index state changes, so
        sharing the store with the original would tear in-flight searches —
        and re-encoded via :meth:`ReferenceStore.requantize`.  Fresh shard
        uids make executors republish the new codes/codebooks; global row
        ids, labels and the embedding matrix are untouched, so only the
        quantization (and therefore recall) changes.
        """
        touched = {
            shard_id for shard_id, shard in enumerate(self._shards) if len(shard.store)
        }
        clone = self._cow_clone(touched)
        for shard_id in touched:
            clone._shards[shard_id].store.requantize(sample_size=sample_size)
        clone._generation += 1
        return clone

    # --------------------------------------------------------------- rebalance
    def _move_class(self, label: str, src: int, dst: int) -> None:
        """Relocate one class's rows between shards, global ids untouched.

        The global ledger (encoding, codes, row ids) never changes — only
        which shard answers for those rows — so merged search results are
        bit-identical before and after the move.
        """
        donor = self._shards[src]
        local_code = donor.store.class_names.index(label)
        mask = donor.store.label_codes == local_code
        moved_ids = donor.global_ids[mask].copy()
        embeddings = np.array(donor.store.class_embeddings(label), dtype=np.float64, copy=True)
        donor.store.remove_class(label)
        donor.global_ids = donor.global_ids[~mask]
        donor.version += 1
        recipient = self._shards[dst]
        recipient.store.add(embeddings, [label] * embeddings.shape[0])
        recipient.global_ids = np.concatenate([recipient.global_ids, moved_ids])
        recipient.version += 1
        self._class_shard[label] = dst

    def _rebalance_plan(
        self, threshold: float, max_moves: Optional[int]
    ) -> List[Tuple[str, int, int]]:
        """Greedy class moves shrinking the max-min row spread.

        Pure simulation over ``(sizes, class placement)`` — no store is
        touched — so copy-on-write rebalancing knows which shards to
        materialise before mutating anything.  Each step moves, from the
        fullest to the emptiest shard, the class whose row count lands
        closest to half the spread; a class at least as large as the spread
        would overshoot and is never moved.
        """
        if threshold < 0:
            raise ValueError("threshold must be non-negative")
        sizes = self.shard_sizes()
        total = sum(sizes)
        if total == 0 or self.n_shards < 2:
            return []
        placement = dict(self._class_shard)
        counts = self.class_counts()
        budget = max_moves if max_moves is not None else 2 * max(1, len(counts))
        mean = total / self.n_shards
        moves: List[Tuple[str, int, int]] = []
        while len(moves) < budget:
            spread = max(sizes) - min(sizes)
            if spread <= threshold * mean:
                break
            donor = int(np.argmax(sizes))
            recipient = int(np.argmin(sizes))
            best: Optional[Tuple[float, str]] = None
            for label, shard_id in placement.items():
                count = counts[label]
                if shard_id != donor or not 0 < count < spread:
                    continue
                # Prefer the class closest to spread/2; labels break ties so
                # the plan is deterministic.
                goodness = min(count, spread - count)
                if best is None or (goodness, label) > (best[0], best[1]):
                    best = (goodness, label)
            if best is None:
                break  # the donor holds one class bigger than the spread
            label = best[1]
            placement[label] = recipient
            sizes[donor] -= counts[label]
            sizes[recipient] += counts[label]
            moves.append((label, donor, recipient))
        return moves

    def rebalance(
        self, *, threshold: float = 0.25, max_moves: Optional[int] = None
    ) -> List[Tuple[str, int, int]]:
        """Move classes off overloaded shards until the row spread is within
        ``threshold * mean`` (in place; see :meth:`with_rebalanced` for the
        serving-safe copy-on-write variant).

        Returns the ``(label, from_shard, to_shard)`` moves applied.
        Global row ids — and therefore merged search results and
        predictions — are unchanged; only scatter load shifts.
        """
        moves = self._rebalance_plan(threshold, max_moves)
        for label, src, dst in moves:
            self._move_class(label, src, dst)
        if moves:
            self._generation += 1
        return moves

    def with_rebalanced(
        self, *, threshold: float = 0.25, max_moves: Optional[int] = None
    ) -> Tuple["ShardedReferenceStore", List[Tuple[str, int, int]]]:
        """A rebalanced copy-on-write clone (``self`` untouched) plus the
        moves applied; returns ``(self, [])`` when already balanced."""
        moves = self._rebalance_plan(threshold, max_moves)
        if not moves:
            return self, []
        touched = {src for _, src, _ in moves} | {dst for _, _, dst in moves}
        clone = self._cow_clone(touched)
        for label, src, dst in moves:
            clone._move_class(label, src, dst)
        clone._generation += 1
        return clone, moves

    # ----------------------------------------------------------- copy-on-write
    def _cow_clone(self, materialise: Set[int]) -> "ShardedReferenceStore":
        """Clone sharing every shard's store except the ``materialise``d ones.

        Shared shards keep their uid/version, so executor-side caches stay
        warm; materialised shards get a deep-copied store (and a fresh uid)
        that the clone may mutate without the original ever observing it.
        """
        clone = ShardedReferenceStore.__new__(ShardedReferenceStore)
        clone.embedding_dim = self.embedding_dim
        clone.n_shards = self.n_shards
        clone.assignment = self.assignment
        clone.storage_dtype = self.storage_dtype
        clone.storage_tier = self.storage_tier
        clone.index_factory = self.index_factory
        clone._executor = self._executor
        clone._obs = self._obs  # swapped clones keep reporting to the same instruments
        clone._class_shard = dict(self._class_shard)
        clone._encoding = self._encoding.clone()
        clone._codes = self._codes.copy()
        clone._size = self._size
        clone._generation = self._generation
        clone._shards = []
        for shard_id, shard in enumerate(self._shards):
            if shard_id in materialise:
                # Deep copy including the trained index state — no k-means
                # retrain on an adaptation swap (the retraining-free story).
                clone._shards.append(
                    _Shard(shard.store.clone(), shard.global_ids.copy(), tier=shard.tier)
                )
            else:
                clone._shards.append(
                    _Shard(
                        shard.store,
                        shard.global_ids.copy(),
                        uid=shard.uid,
                        version=shard.version,
                        tier=shard.tier,
                    )
                )
        return clone

    def with_class_added(self, label: str, embeddings: np.ndarray) -> "ShardedReferenceStore":
        """A new store with the class appended; ``self`` is untouched."""
        label = str(label)
        embeddings = np.atleast_2d(np.asarray(embeddings, dtype=np.float64))
        shard_id = self.shard_of(label)
        clone = self._cow_clone({shard_id})
        clone._class_shard.setdefault(label, shard_id)
        clone.add(embeddings, [label] * embeddings.shape[0])
        return clone

    def with_class_removed(self, label: str) -> "ShardedReferenceStore":
        """A new store without the class; ``self`` is untouched."""
        label = str(label)
        if label not in self._encoding.index:
            raise KeyError(f"no references with label {label!r}")
        clone = self._cow_clone({self._class_shard[label]})
        clone.remove_class(label)
        return clone

    def with_class_replaced(self, label: str, embeddings: np.ndarray) -> "ShardedReferenceStore":
        """A new store with the class's references swapped; ``self`` untouched."""
        label = str(label)
        embeddings = np.atleast_2d(np.asarray(embeddings, dtype=np.float64))
        shard_id = self.shard_of(label)
        clone = self._cow_clone({shard_id})
        clone._class_shard.setdefault(label, shard_id)
        clone.replace_class(label, embeddings)
        return clone

    # ------------------------------------------------------------------ search
    def search(
        self, queries: np.ndarray, k: int, *, metric: str = "euclidean"
    ) -> Tuple[np.ndarray, np.ndarray]:
        """Merged k nearest references, ordered by ``(distance, global id)``."""
        if self._size == 0:
            raise RuntimeError("the sharded reference store is empty")
        queries = np.atleast_2d(np.asarray(queries, dtype=np.float64))
        if queries.shape[1] != self.embedding_dim:
            raise ValueError(
                f"query embeddings have dimension {queries.shape[1]}, "
                f"store holds dimension {self.embedding_dim}"
            )
        k = min(int(k), self._size)
        live = [shard for shard in self._shards if len(shard.store)]
        obs = self._obs
        outer_trace = obs_tracing.enabled()
        if obs is None and not outer_trace:
            # The untelemetered fast path: no clocks, no collector.
            results = self._executor.search(live, queries, k, metric)
            return self._merge(live, results, k)
        # Collect per-shard scan records (recorded by the executors, or
        # piggybacked from worker processes) in a nested collector, then
        # fold them into the attached histograms and the outer trace.
        collector = obs_tracing.push()
        try:
            scatter_start = time.perf_counter()
            results = self._executor.search(live, queries, k, metric)
            scatter_s = time.perf_counter() - scatter_start
        finally:
            obs_tracing.pop()
        merge_start = time.perf_counter()
        merged = self._merge(live, results, k)
        merge_s = time.perf_counter() - merge_start
        if obs is not None:
            obs["searches"].inc()
            obs["scatter"].observe(scatter_s)
            obs["merge"].observe(merge_s)
            scan_hist = obs["shard_scan"]
            for span in collector:
                if span.stage == "shard_scan":
                    scan_hist.observe(
                        span.seconds, native="yes" if span.detail.get("native") else "no"
                    )
        if outer_trace:
            obs_tracing.record("scatter", scatter_s, n_shards=len(live))
            for span in collector:
                obs_tracing.record_span(span)
            obs_tracing.record("merge", merge_s)
        return merged

    def _merge(
        self, live: List[_Shard], results: List[Tuple[np.ndarray, np.ndarray]], k: int
    ) -> Tuple[np.ndarray, np.ndarray]:
        """Merge per-shard candidates into the global (distance, id) top-k."""
        merged_d = np.concatenate([distances for distances, _ in results], axis=1)
        merged_g = np.concatenate(
            [shard.global_ids[ids] for shard, (_, ids) in zip(live, results)], axis=1
        )
        order = np.lexsort((merged_g, merged_d), axis=1)[:, :k]
        return (
            np.take_along_axis(merged_d, order, axis=1),
            np.take_along_axis(merged_g, order, axis=1),
        )

    # ------------------------------------------------------------- flatten/save
    def flatten(self) -> Tuple[np.ndarray, List[str]]:
        """``(embeddings, labels)`` in global row order (for persistence)."""
        names = self._encoding.names
        labels = [names[code] for code in self._codes[: self._size].tolist()]
        return np.asarray(self.embeddings), labels

    def to_reference_store(
        self, index: Optional[NearestNeighbourIndex] = None
    ) -> ReferenceStore:
        """Collapse back into a flat store (same global row order)."""
        flat = ReferenceStore(
            self.embedding_dim,
            index=index if index is not None else self.index_factory(),
            storage_dtype=self.storage_dtype,
        )
        embeddings, labels = self.flatten()
        if len(labels):
            flat.add(embeddings, labels)
        return flat
