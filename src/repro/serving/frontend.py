"""Asyncio TCP front-end: the network face of the serving subsystem.

:class:`FrontendServer` accepts length-prefixed frames
(:mod:`repro.serving.protocol`), feeds query batches to a
:class:`~repro.serving.scheduler.BatchScheduler` and answers with ranked
predictions.  The event loop only ever parses frames and writes responses;
classification — which blocks on scheduler tickets — runs on a thread pool,
so one slow batch never stalls the accept loop or the other connections.
With the scheduler running ``n_executors > 1`` and the sharded store
scattering through a :class:`~repro.serving.sharded_store.ReplicaSet`,
concurrent connections fan out across read replicas.

The failure contract is the one the fuzz suite enforces: *every* bad input
— truncated frames, hostile length prefixes, garbage payloads, wrong
dimensions, NaN embeddings, invalid JSON — is answered with a structured
``ERROR`` frame (or, when the stream can no longer be re-synchronised, the
error frame followed by a clean close).  The server process never dies on
client input and a failed connection never leaks its handler task.

The server runs embedded (``async with FrontendServer(...)``), or from a
background thread via :meth:`start_in_thread`/:meth:`stop` for blocking
callers (the CLI, benches and tests), or as a process via
``repro serve --port``.
"""

from __future__ import annotations

import asyncio
import threading
import time
from concurrent.futures import ThreadPoolExecutor
from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.obs.export import CONTENT_TYPE, render_prometheus
from repro.obs.metrics import MetricsRegistry
from repro.serving import protocol
from repro.serving.protocol import ProtocolError
from repro.serving.scheduler import BatchScheduler
from repro.serving.sharded_store import ServingError
from repro.serving.tenancy import DEFAULT_TENANT, TenantRegistry, UnknownTenantError

_RESULT_TIMEOUT_S = 60.0


class FrontendStats:
    """Counters the front-end reports through ``stats`` control requests.

    Backed by ``repro_frontend_*`` registry metrics (errors are one
    labelled counter, ``repro_frontend_errors_total{code=...}``); the
    attribute API and ``as_dict()`` keys are unchanged from the
    pre-registry dataclass.
    """

    def __init__(self, registry: Optional[MetricsRegistry] = None) -> None:
        if registry is None:
            registry = MetricsRegistry()
        self.registry = registry
        self._connections = registry.counter(
            "repro_frontend_connections_total", "TCP connections accepted."
        )
        self._open_connections = registry.gauge(
            "repro_frontend_open_connections", "Connections currently open."
        )
        self._frames = registry.counter(
            "repro_frontend_frames_total", "Well-framed client frames received."
        )
        self._queries = registry.counter(
            "repro_frontend_queries_total",
            "Query embeddings received over the wire, by tenant.",
            labels=("tenant",),
        )
        self._errors = registry.counter(
            "repro_frontend_errors_total",
            "Error frames sent, by machine-readable code.",
            labels=("code",),
        )

    @property
    def connections(self) -> int:
        """Connections accepted since start."""
        return int(self._connections.value())

    @property
    def open_connections(self) -> int:
        """Connections currently open."""
        return int(self._open_connections.value())

    @property
    def frames(self) -> int:
        """Well-framed frames received."""
        return int(self._frames.value())

    @property
    def queries(self) -> int:
        """Query embeddings received (all tenants)."""
        return int(self._queries.total())

    @property
    def queries_by_tenant(self) -> Dict[str, int]:
        """Query embeddings received, per tenant."""
        return {labels["tenant"]: int(value) for labels, value in self._queries.samples()}

    @property
    def errors(self) -> int:
        """Error frames sent (all codes)."""
        return int(self._errors.total())

    @property
    def errors_by_code(self) -> Dict[str, int]:
        """Error frames sent, per machine-readable code."""
        return {labels["code"]: int(value) for labels, value in self._errors.samples()}

    def count_connection_opened(self) -> None:
        """Count a newly accepted connection."""
        self._connections.inc()
        self._open_connections.inc()

    def count_connection_closed(self) -> None:
        """Count a connection teardown."""
        self._open_connections.dec()

    def count_frame(self) -> None:
        """Count one well-framed client frame."""
        self._frames.inc()

    def count_queries(self, n: int, *, tenant: str = DEFAULT_TENANT) -> None:
        """Count ``n`` query embeddings received for ``tenant``."""
        self._queries.inc(n, tenant=tenant)

    def count_error(self, code: str) -> None:
        """Count one error frame under its machine-readable code."""
        self._errors.inc(code=code)

    def as_dict(self) -> Dict:
        """The counters as a JSON-serialisable dict (the stats control op)."""
        return {
            "connections": self.connections,
            "open_connections": self.open_connections,
            "frames": self.frames,
            "queries": self.queries,
            "queries_by_tenant": self.queries_by_tenant,
            "errors": self.errors,
            "errors_by_code": self.errors_by_code,
        }


class FrontendServer:
    """Serve classification over TCP on top of a batch scheduler.

    ``scheduler`` handles queries; ``manager`` (optional, a
    :class:`~repro.serving.manager.DeploymentManager`) additionally enables
    the ``info``/``rebalance`` control operations that need the live store.
    ``tenants`` (optional, a :class:`~repro.serving.tenancy.TenantRegistry`)
    turns the front-end multi-tenant: queries and control ops carrying a
    tenant name route to that tenant's deployment, and the ``tenant``
    / ``tenants`` control ops manage the registry over the wire.
    """

    def __init__(
        self,
        scheduler: BatchScheduler,
        *,
        manager=None,
        tenants: Optional[TenantRegistry] = None,
        host: str = "127.0.0.1",
        port: int = 0,
        n_handler_threads: int = 8,
        result_timeout_s: float = _RESULT_TIMEOUT_S,
        registry: Optional[MetricsRegistry] = None,
    ) -> None:
        if n_handler_threads <= 0:
            raise ValueError("n_handler_threads must be positive")
        self.scheduler = scheduler
        self.tenants = tenants
        if manager is None and tenants is not None:
            manager = tenants.default
        self.manager = manager
        self.host = host
        self.port = int(port)  # 0 = ephemeral; rewritten once bound
        self.result_timeout_s = float(result_timeout_s)
        # Share the scheduler's registry by default so one scrape (the
        # metrics op / --metrics-port) covers the whole pipeline.
        if registry is None:
            registry = scheduler.registry
        self.registry = registry
        self.stats = FrontendStats(registry)
        self._decode_hist = registry.histogram(
            "repro_frontend_decode_seconds", "Time decoding QUERY frame payloads."
        )
        self._encode_hist = registry.histogram(
            "repro_frontend_encode_seconds", "Time encoding RESULT frame payloads."
        )
        self._request_hist = registry.histogram(
            "repro_frontend_request_seconds",
            "Whole QUERY frame handling time (decode through encode).",
        )
        self._executor = ThreadPoolExecutor(
            max_workers=n_handler_threads, thread_name_prefix="frontend-classify"
        )
        self._server: Optional[asyncio.AbstractServer] = None
        self._loop: Optional[asyncio.AbstractEventLoop] = None
        self._stop_event: Optional[asyncio.Event] = None
        self._thread: Optional[threading.Thread] = None
        self._started = threading.Event()
        self._startup_error: Optional[BaseException] = None

    # ------------------------------------------------------------------ address
    @property
    def address(self) -> Tuple[str, int]:
        """The bound ``(host, port)`` (port is rewritten once bound)."""
        return self.host, self.port

    # ------------------------------------------------------------- async server
    async def start(self) -> "FrontendServer":
        """Bind and start accepting connections on the running event loop."""
        self._loop = asyncio.get_running_loop()
        self._stop_event = asyncio.Event()
        self._server = await asyncio.start_server(self._handle_connection, self.host, self.port)
        self.port = self._server.sockets[0].getsockname()[1]
        self._started.set()
        return self

    async def serve_forever(self) -> None:
        """Block until :meth:`stop` (from any thread) is called."""
        if self._server is None:
            await self.start()
        assert self._stop_event is not None
        await self._stop_event.wait()
        await self._shutdown()

    async def _shutdown(self) -> None:
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None

    async def __aenter__(self) -> "FrontendServer":
        return await self.start()

    async def __aexit__(self, *exc_info) -> None:
        await self._shutdown()
        self._executor.shutdown(wait=False)

    # --------------------------------------------------------- threaded runner
    def start_in_thread(self, *, timeout_s: float = 10.0) -> "FrontendServer":
        """Run the server on a dedicated event-loop thread; returns once bound."""
        if self._thread is not None:
            return self

        def runner() -> None:
            try:
                asyncio.run(self.serve_forever())
            except BaseException as error:  # surface bind failures to the caller
                self._startup_error = error
                self._started.set()

        self._thread = threading.Thread(target=runner, name="serving-frontend", daemon=True)
        self._thread.start()
        if not self._started.wait(timeout_s):
            raise ServingError("the front-end server did not start in time")
        if self._startup_error is not None:
            raise ServingError(f"the front-end server failed to start: {self._startup_error!r}")
        return self

    def stop(self) -> None:
        """Stop the server (thread-safe); joins the loop thread if one exists."""
        loop, stop_event = self._loop, self._stop_event
        if loop is not None and stop_event is not None and not loop.is_closed():
            try:
                loop.call_soon_threadsafe(stop_event.set)
            except RuntimeError:
                pass  # loop already closed between the check and the call
        if self._thread is not None:
            self._thread.join(timeout=10.0)
            self._thread = None
        self._executor.shutdown(wait=False)

    def __enter__(self) -> "FrontendServer":
        return self.start_in_thread()

    def __exit__(self, *exc_info) -> None:
        self.stop()

    # ------------------------------------------------------------- connections
    async def _handle_connection(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        self.stats.count_connection_opened()
        try:
            await self._serve_connection(reader, writer)
        except asyncio.CancelledError:
            pass  # server shutting down with this connection open
        finally:
            self.stats.count_connection_closed()
            try:
                writer.close()
            except Exception:
                pass

    async def _serve_connection(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        while True:
            try:
                header = await reader.readexactly(protocol.HEADER.size)
            except (asyncio.IncompleteReadError, ConnectionError):
                return  # clean close or truncated mid-frame: nothing to answer
            try:
                frame_type, length = protocol.parse_header(header)
            except ProtocolError as error:
                if error.recoverable:
                    # Unknown frame type with intact framing: drain the
                    # declared payload so the stream stays in sync, answer
                    # the error, keep serving.
                    _, _, length = protocol.HEADER.unpack(header)
                    try:
                        if length:
                            await reader.readexactly(length)
                    except (asyncio.IncompleteReadError, ConnectionError):
                        return
                    await self._send_error(writer, error)
                    continue
                # Framing is broken (bad magic / hostile length): answer
                # once, then close — we cannot find the next frame.
                await self._send_error(writer, error)
                return
            try:
                payload = await reader.readexactly(length) if length else b""
            except (asyncio.IncompleteReadError, ConnectionError):
                return
            self.stats.count_frame()
            try:
                response = await self._dispatch(frame_type, payload)
            except ProtocolError as error:
                await self._send_error(writer, error)
                if not error.recoverable:
                    return
                continue
            except Exception as error:  # classification/control failure
                await self._send_error(
                    writer, ProtocolError("server-error", f"{type(error).__name__}: {error}")
                )
                continue
            writer.write(response)
            try:
                await writer.drain()
            except ConnectionError:
                return

    async def _send_error(self, writer: asyncio.StreamWriter, error: ProtocolError) -> None:
        self.stats.count_error(error.code)
        try:
            writer.write(
                protocol.encode_error(
                    error.code,
                    str(error),
                    recoverable=error.recoverable,
                    details=getattr(error, "details", None),
                )
            )
            await writer.drain()
        except (ConnectionError, OSError):
            pass

    # ---------------------------------------------------------------- dispatch
    async def _dispatch(self, frame_type: int, payload: bytes) -> bytes:
        if frame_type == protocol.QUERY:
            return await self._handle_query(payload)
        if frame_type == protocol.CONTROL:
            body = protocol.decode_json(payload)
            # Off the event loop like queries: a rebalance deep-copies
            # shard stores and contends on the swap lock — run inline it
            # would stall every other connection for the duration.
            loop = asyncio.get_running_loop()
            return await loop.run_in_executor(self._executor, self._handle_control, body)
        raise ProtocolError(
            "bad-frame-type", f"clients may only send QUERY or CONTROL frames, got {frame_type}"
        )

    async def _handle_query(self, payload: bytes) -> bytes:
        request_start = time.perf_counter()
        batch, top_n, tenant = protocol.decode_query(payload)
        if tenant == DEFAULT_TENANT:
            tenant = None  # "default" and no-tenant-block are the same route
        self._decode_hist.observe(time.perf_counter() - request_start)
        store = self._store(tenant)
        if store is not None and batch.shape[1] != store.embedding_dim:
            raise ProtocolError(
                "bad-dim",
                f"queries have dimension {batch.shape[1]}, "
                f"the deployment serves dimension {store.embedding_dim}",
            )
        if not np.isfinite(batch).all():
            raise ProtocolError(
                "bad-values", "query embeddings contain NaN/inf values; refusing to classify"
            )
        loop = asyncio.get_running_loop()
        generation, ranked = await loop.run_in_executor(
            self._executor, self._classify_block, batch, top_n, tenant
        )
        self.stats.count_queries(batch.shape[0], tenant=tenant or DEFAULT_TENANT)
        encode_start = time.perf_counter()
        response = protocol.encode_result(generation, ranked)
        self._encode_hist.observe(time.perf_counter() - encode_start)
        self._request_hist.observe(time.perf_counter() - request_start)
        return response

    def _classify_block(
        self, batch: np.ndarray, top_n: int, tenant: Optional[str] = None
    ) -> Tuple[int, List[Tuple[List[str], List[float]]]]:
        """Blocking classification of one frame's batch (thread-pool side)."""
        try:
            tickets = [self.scheduler.submit(embedding, tenant=tenant) for embedding in batch]
        except UnknownTenantError as error:
            raise ProtocolError(
                "unknown-tenant", str(error), details={"tenant": error.tenant}
            ) from error
        if not self.scheduler.running:
            self.scheduler.flush()
        ranked: List[Tuple[List[str], List[float]]] = []
        for ticket in tickets:
            try:
                prediction = ticket.result(self.result_timeout_s)
            except ServingError as error:
                raise ProtocolError("query-failed", str(error)) from error
            ranked.append((prediction.ranked_labels[:top_n], prediction.scores[:top_n]))
        # The generation that actually served the batch (an adaptation swap
        # can land between submit and execute).  A batch straddling a swap
        # reports the newest snapshot that served any of its queries.
        generations = [ticket.generation for ticket in tickets if ticket.generation is not None]
        if generations:
            return max(generations), ranked
        manager = self._manager_for(tenant)
        if manager is not None:
            return manager.generation, ranked
        return self.scheduler.source.snapshot().generation, ranked

    def _manager_for(self, tenant: Optional[str]):
        """The deployment manager serving ``tenant`` (None when unmanaged).

        Raises ``unknown-tenant`` for a named tenant nobody answers to —
        including any named tenant on a single-tenant front-end.
        """
        if tenant is None or (self.tenants is None and tenant == DEFAULT_TENANT):
            return self.manager
        if self.tenants is None:
            raise ProtocolError(
                "unknown-tenant",
                f"this front-end is single-tenant; unknown tenant {tenant!r}",
                details={"tenant": tenant},
            )
        try:
            return self.tenants.get(tenant)
        except UnknownTenantError as error:
            raise ProtocolError(
                "unknown-tenant", str(error), details={"tenant": error.tenant}
            ) from error

    def _store(self, tenant: Optional[str] = None):
        manager = self._manager_for(tenant)
        if manager is not None:
            return manager.store
        return None

    def _handle_control(self, body: Dict) -> bytes:
        op = body.get("op")
        try:
            return self._control_op(op, body)
        except ProtocolError as error:
            # Echo the op into the structured error body: a client
            # pipelining several control ops must be able to tell which
            # one the server rejected.
            if isinstance(op, str):
                error.details.setdefault("op", op)
            raise

    def _control_tenant(self, body: Dict) -> Optional[str]:
        """The validated tenant routing key of a control body (or None)."""
        tenant = body.get("tenant")
        if tenant is None or tenant == DEFAULT_TENANT:
            return None
        protocol.validate_tenant(tenant)
        return tenant

    def _require_manager(self, tenant: Optional[str], *, action: str):
        manager = self._manager_for(tenant)
        if manager is None:
            raise ProtocolError("bad-control", f"no deployment manager attached; cannot {action}")
        return manager

    def _embeddings_from(self, body: Dict, store) -> np.ndarray:
        """Validated ``(n, dim)`` float64 block from a control body."""
        embeddings = body.get("embeddings")
        if not isinstance(embeddings, list) or not embeddings:
            raise ProtocolError("bad-control", "embeddings must be a non-empty list of rows")
        try:
            block = np.asarray(embeddings, dtype=np.float64)
        except (TypeError, ValueError) as error:
            raise ProtocolError("bad-control", f"embeddings are not numeric: {error}") from error
        if block.ndim != 2 or block.shape[0] == 0 or block.shape[1] == 0:
            raise ProtocolError(
                "bad-control", f"embeddings must be a rectangular (n, dim) block, got {block.shape}"
            )
        if not np.isfinite(block).all():
            raise ProtocolError(
                "bad-values", "reference embeddings contain NaN/inf values; refusing to store"
            )
        if store is not None and len(store) and block.shape[1] != store.embedding_dim:
            raise ProtocolError(
                "bad-dim",
                f"embeddings have dimension {block.shape[1]}, "
                f"the deployment serves dimension {store.embedding_dim}",
            )
        return block

    @staticmethod
    def _label_from(body: Dict) -> str:
        label = body.get("label")
        if not isinstance(label, str) or not label:
            raise ProtocolError("bad-control", f"label must be a non-empty string, got {label!r}")
        return label

    def _control_op(self, op, body: Dict) -> bytes:
        if op == "ping":
            return protocol.encode_json(protocol.CONTROL, {"ok": True})
        if op == "stats":
            stats: Dict = {
                "frontend": self.stats.as_dict(),
                "scheduler": self.scheduler.stats.as_dict(),
            }
            store = self._store()
            if store is not None:
                stats["native_kernels"] = store.kernel_status()
                executor = store.executor
                if hasattr(executor, "routed_counts"):
                    # A ReplicaSet router: expose per-replica routing and
                    # in-flight depth so health checks can spot a stuck or
                    # starved replica.
                    replicas: Dict = {
                        "router": getattr(executor, "router", None),
                        "n_replicas": getattr(executor, "n_replicas", None),
                        "routed_counts": executor.routed_counts(),
                    }
                    if hasattr(executor, "inflight_counts"):
                        replicas["in_flight"] = executor.inflight_counts()
                    stats["replicas"] = replicas
            return protocol.encode_json(protocol.CONTROL, stats)
        if op == "metrics":
            # Prometheus text exposition over the wire: any RSF1 client
            # can scrape without the optional --metrics-port endpoint.
            return protocol.encode_json(
                protocol.CONTROL,
                {
                    "content_type": CONTENT_TYPE,
                    "exposition": render_prometheus(self.registry),
                },
            )
        if op == "info":
            tenant = self._control_tenant(body)
            manager = self._manager_for(tenant)
            store = manager.store if manager is not None else None
            info: Dict = {"ok": True}
            if tenant is not None:
                info["tenant"] = tenant
            if manager is not None and store is not None:
                info.update(
                    generation=manager.generation,
                    n_references=len(store),
                    n_classes=store.n_classes,
                    embedding_dim=store.embedding_dim,
                    n_shards=store.n_shards,
                    shard_sizes=store.shard_sizes(),
                    drift_ratio=float(store.drift_ratio()),
                    retrain_needed=bool(store.retrain_needed()),
                    index_spec=store.index_spec(),
                    native_kernels=store.kernel_status(),
                )
                replicas = getattr(store.executor, "n_replicas", None)
                if replicas is not None:
                    info["n_replicas"] = replicas
            return protocol.encode_json(protocol.CONTROL, info)
        if op == "rebalance":
            manager = self._require_manager(self._control_tenant(body), action="rebalance")
            threshold = body.get("threshold", 0.25)
            if not isinstance(threshold, (int, float)) or not 0.0 <= float(threshold):
                raise ProtocolError("bad-control", f"invalid rebalance threshold {threshold!r}")
            moves = manager.rebalance(threshold=float(threshold))
            return protocol.encode_json(
                protocol.CONTROL,
                {
                    "moved": [[label, int(src), int(dst)] for label, src, dst in moves],
                    "shard_sizes": manager.store.shard_sizes(),
                    "generation": manager.generation,
                },
            )
        if op == "requantize":
            manager = self._require_manager(self._control_tenant(body), action="requantize")
            sample_size = body.get("sample_size")
            if sample_size is not None and (
                not isinstance(sample_size, int)
                or isinstance(sample_size, bool)
                or sample_size <= 0
            ):
                raise ProtocolError("bad-control", f"invalid sample_size {sample_size!r}")
            drift_before = float(manager.drift_ratio())
            snapshot = manager.requantize(sample_size=sample_size)
            return protocol.encode_json(
                protocol.CONTROL,
                {
                    "drift_ratio_before": drift_before,
                    "drift_ratio": float(snapshot.store.drift_ratio()),
                    "generation": snapshot.generation,
                },
            )
        if op == "add":
            manager = self._require_manager(self._control_tenant(body), action="add a class")
            label = self._label_from(body)
            block = self._embeddings_from(body, manager.store)
            try:
                snapshot = manager.add_class(label, block)
            except (ServingError, ValueError) as error:
                raise ProtocolError("bad-control", str(error)) from error
            return protocol.encode_json(
                protocol.CONTROL,
                {
                    "ok": True,
                    "label": label,
                    "n_classes": snapshot.store.n_classes,
                    "generation": snapshot.generation,
                },
            )
        if op == "remove":
            manager = self._require_manager(self._control_tenant(body), action="remove a class")
            label = self._label_from(body)
            try:
                snapshot = manager.remove_class(label)
            except (ServingError, ValueError, KeyError) as error:
                raise ProtocolError("bad-control", str(error)) from error
            return protocol.encode_json(
                protocol.CONTROL,
                {
                    "ok": True,
                    "label": label,
                    "n_classes": snapshot.store.n_classes,
                    "generation": snapshot.generation,
                },
            )
        if op == "replace":
            manager = self._require_manager(self._control_tenant(body), action="replace a class")
            label = self._label_from(body)
            block = self._embeddings_from(body, manager.store)
            try:
                snapshot = manager.replace_class(label, block)
            except (ServingError, ValueError, KeyError) as error:
                raise ProtocolError("bad-control", str(error)) from error
            return protocol.encode_json(
                protocol.CONTROL,
                {
                    "ok": True,
                    "label": label,
                    "n_classes": snapshot.store.n_classes,
                    "generation": snapshot.generation,
                },
            )
        if op == "tenant":
            if self.tenants is None:
                raise ProtocolError(
                    "bad-control", "this front-end is single-tenant; no tenant registry attached"
                )
            action = body.get("action")
            name = body.get("name")
            if not isinstance(name, str):
                raise ProtocolError("bad-control", f"tenant name must be a string, got {name!r}")
            protocol.validate_tenant(name)
            if action == "create":
                try:
                    manager = self.tenants.create(name)
                except ServingError as error:
                    raise ProtocolError("bad-control", str(error)) from error
                return protocol.encode_json(
                    protocol.CONTROL,
                    {"ok": True, "tenant": name, "generation": manager.generation},
                )
            if action == "drop":
                try:
                    self.tenants.drop(name)
                except UnknownTenantError as error:
                    raise ProtocolError(
                        "unknown-tenant", str(error), details={"tenant": error.tenant}
                    ) from error
                except ServingError as error:
                    raise ProtocolError("bad-control", str(error)) from error
                return protocol.encode_json(protocol.CONTROL, {"ok": True, "tenant": name})
            raise ProtocolError(
                "bad-control", f"unknown tenant action {action!r}; expected create or drop"
            )
        if op == "tenants":
            if self.tenants is not None:
                return protocol.encode_json(
                    protocol.CONTROL, {"tenants": self.tenants.describe()}
                )
            report: Dict = {}
            if self.manager is not None:
                store = self.manager.store
                report[DEFAULT_TENANT] = {
                    "generation": self.manager.generation,
                    "n_references": len(store),
                    "n_classes": store.n_classes,
                    "drift_ratio": float(store.drift_ratio()),
                }
            return protocol.encode_json(protocol.CONTROL, {"tenants": report})
        if op == "replica":
            manager = self._require_manager(
                self._control_tenant(body), action="manage replicas"
            )
            executor = manager.store.executor
            if not hasattr(executor, "kill"):
                raise ProtocolError(
                    "bad-control", "this deployment has no replica router; nothing to kill"
                )
            action = body.get("action")
            position = body.get("position")
            if not isinstance(position, int) or isinstance(position, bool):
                raise ProtocolError("bad-control", f"replica position must be an int, got {position!r}")
            if action not in ("kill", "restore"):
                raise ProtocolError(
                    "bad-control", f"unknown replica action {action!r}; expected kill or restore"
                )
            try:
                if action == "kill":
                    executor.kill(position)
                else:
                    executor.restore(position)
            except ServingError as error:
                raise ProtocolError("bad-control", str(error)) from error
            return protocol.encode_json(
                protocol.CONTROL,
                {
                    "ok": True,
                    "action": action,
                    "position": position,
                    "alive": executor.alive_flags(),
                },
            )
        raise ProtocolError("bad-control", f"unknown control op {op!r}")
