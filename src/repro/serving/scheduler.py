"""Micro-batched query scheduling for the serving layer.

The batched :meth:`~repro.core.classifier.KNNClassifier.predict` path is an
order of magnitude cheaper per query than classifying one trace at a time,
but a serving front-end receives queries one at a time.
:class:`BatchScheduler` closes that gap: submitted queries are coalesced
into micro-batches bounded by ``max_batch_size`` (throughput knob) and
``max_latency_s`` (tail-latency knob — the longest any query waits for
company), and every batch classifies against one consistent
:class:`~repro.serving.manager.ServingSnapshot`, so an adaptation swap
mid-stream can never tear a batch.

An LRU cache keyed on ``(snapshot cache token, quantized embedding bytes)``
short-circuits repeated queries — the paper's victims revisit pages, and
TLS traces quantize to identical embeddings more often than raw floats
suggest.  The cache token is the snapshot's ``(generation, index
signature)``: the generation invalidates the whole cache the moment an
adaptation swap lands, and the index signature keeps predictions cached
under one index configuration (say, approximate ivfpq ``rerank=0``) from
ever being served by a redeployment with another — generation counters
restart at 0 across deployments, so the generation alone cannot carry that
guarantee.

The scheduler runs in two modes: with :meth:`start` (or as a context
manager) a background thread flushes batches as they fill or age out;
without it, full batches execute inline on ``submit`` and :meth:`flush`
drains the tail — deterministic, for tests and single-threaded replay.
``n_executors > 1`` classifies ready batches on a small thread pool
instead of the flusher thread itself, which is what lets a
:class:`~repro.serving.sharded_store.ReplicaSet` spread concurrent
batches across read replicas.
"""

from __future__ import annotations

import threading
import time
from collections import OrderedDict
from concurrent.futures import ThreadPoolExecutor
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.core.classifier import Prediction
from repro.obs import metrics as obs_metrics
from repro.obs import tracing as obs_tracing
from repro.obs.metrics import MetricsRegistry
from repro.obs.tracing import Tracer
from repro.serving.sharded_store import ServingError

_DEFAULT_RESULT_TIMEOUT_S = 60.0


class SchedulerStats:
    """Scheduler counters, backed by the metrics registry.

    The attribute API (``stats.submitted``, ``stats.cache_hits``, …) and
    ``as_dict()`` keys are unchanged from the pre-registry dataclass so
    bench snapshots and tests keep working, but the numbers now live in
    ``repro_scheduler_*`` registry metrics — one scrape of the shared
    registry sees exactly what ``as_dict()`` reports.
    """

    def __init__(self, registry: Optional[MetricsRegistry] = None) -> None:
        if registry is None:
            registry = MetricsRegistry()
        self.registry = registry
        self._submitted = registry.counter(
            "repro_scheduler_queries_submitted_total", "Queries submitted to the scheduler."
        )
        self._completed = registry.counter(
            "repro_scheduler_queries_completed_total", "Queries answered with a prediction."
        )
        self._failed = registry.counter(
            "repro_scheduler_queries_failed_total", "Queries completed with an error."
        )
        self._batches = registry.counter(
            "repro_scheduler_batches_total", "Micro-batches executed."
        )
        self._cache_hits = registry.counter(
            "repro_scheduler_cache_hits_total", "Prediction-cache hits."
        )
        self._cache_misses = registry.counter(
            "repro_scheduler_cache_misses_total", "Prediction-cache misses."
        )
        self._largest_batch = registry.gauge(
            "repro_scheduler_largest_batch", "Largest micro-batch executed so far."
        )

    @property
    def submitted(self) -> int:
        """Queries submitted."""
        return int(self._submitted.value())

    @property
    def completed(self) -> int:
        """Queries answered with a prediction (cache hits included)."""
        return int(self._completed.value())

    @property
    def failed(self) -> int:
        """Queries that completed with an error."""
        return int(self._failed.value())

    @property
    def batches(self) -> int:
        """Micro-batches executed."""
        return int(self._batches.value())

    @property
    def cache_hits(self) -> int:
        """Prediction-cache hits."""
        return int(self._cache_hits.value())

    @property
    def cache_misses(self) -> int:
        """Prediction-cache misses."""
        return int(self._cache_misses.value())

    @property
    def largest_batch(self) -> int:
        """Largest batch executed so far."""
        return int(self._largest_batch.value())

    @property
    def cache_hit_rate(self) -> float:
        """Hits over lookups (0.0 before any lookup happened)."""
        hits, misses = self.cache_hits, self.cache_misses
        looked_up = hits + misses
        return hits / looked_up if looked_up else 0.0

    def count_submitted(self) -> None:
        """Record one submission."""
        self._submitted.inc()

    def count_cache_hit(self) -> None:
        """Record a cache hit (which also completes the query)."""
        self._cache_hits.inc()
        self._completed.inc()

    def count_cache_miss(self) -> None:
        """Record a cache miss."""
        self._cache_misses.inc()

    def count_batch(self, size: int) -> None:
        """Record one executed batch of ``size`` queries."""
        self._batches.inc()
        self._largest_batch.set_max(size)

    def count_completed(self, n: int) -> None:
        """Record ``n`` successfully answered queries."""
        self._completed.inc(n)

    def count_failed(self, n: int) -> None:
        """Record ``n`` failed queries."""
        self._failed.inc(n)

    def as_dict(self) -> Dict[str, float]:
        """The counters as a JSON-serialisable dict (bench snapshots)."""
        return {
            "submitted": self.submitted,
            "completed": self.completed,
            "failed": self.failed,
            "batches": self.batches,
            "cache_hits": self.cache_hits,
            "cache_misses": self.cache_misses,
            "largest_batch": self.largest_batch,
            "cache_hit_rate": self.cache_hit_rate,
        }


class QueryTicket:
    """Handle for one submitted query; :meth:`result` blocks until classified."""

    __slots__ = (
        "_done", "_prediction", "_error", "submitted_at", "completed_at", "cached", "generation",
        "trace",
    )

    def __init__(self, submitted_at: float) -> None:
        self._done = threading.Event()
        self._prediction: Optional[Prediction] = None
        self._error: Optional[str] = None
        self.submitted_at = submitted_at
        self.completed_at: Optional[float] = None
        self.cached = False
        # Span trace for sampled queries (None on the unsampled fast path);
        # see repro.obs.tracing.
        self.trace = None
        # Generation of the snapshot that actually served the prediction —
        # a swap can land between submit and execute, so callers reporting
        # generations (the front-end's RESULT frames) must read it here,
        # not from a snapshot they grabbed before submitting.
        self.generation: Optional[int] = None

    def _fulfil(
        self,
        prediction: Prediction,
        completed_at: float,
        *,
        cached: bool = False,
        generation: Optional[int] = None,
    ) -> None:
        self._prediction = prediction
        self.completed_at = completed_at
        self.cached = cached
        self.generation = generation
        self._done.set()

    def _fail(self, message: str, completed_at: float) -> None:
        self._error = message
        self.completed_at = completed_at
        self._done.set()

    def done(self) -> bool:
        """Whether the query has been answered (successfully or not)."""
        return self._done.is_set()

    @property
    def failed(self) -> bool:
        """Whether the query completed with an error instead of a prediction."""
        return self._done.is_set() and self._error is not None

    @property
    def latency_s(self) -> Optional[float]:
        """Submit-to-completion latency (``None`` while still pending)."""
        if self.completed_at is None:
            return None
        return self.completed_at - self.submitted_at

    def result(self, timeout: Optional[float] = _DEFAULT_RESULT_TIMEOUT_S) -> Prediction:
        """Block until classified; raises ``ServingError`` on failure/timeout."""
        if not self._done.wait(timeout):
            raise ServingError("timed out waiting for the query result")
        if self._error is not None:
            raise ServingError(f"query failed: {self._error}")
        assert self._prediction is not None
        return self._prediction


class BatchScheduler:
    """Coalesce single-query submissions into micro-batched classification."""

    def __init__(
        self,
        source,
        *,
        max_batch_size: int = 64,
        max_latency_s: float = 0.002,
        cache_size: int = 4096,
        cache_decimals: int = 6,
        n_executors: int = 1,
        registry: Optional[MetricsRegistry] = None,
        tracer: Optional[Tracer] = None,
    ) -> None:
        """``source`` is anything with ``snapshot() -> ServingSnapshot``
        (a :class:`~repro.serving.manager.DeploymentManager` in practice).

        ``n_executors`` bounds how many ready batches classify
        concurrently in background mode; match it to the store's replica
        count so a :class:`~repro.serving.sharded_store.ReplicaSet` can
        spread them.

        ``registry`` receives the scheduler's metrics (a private
        :class:`~repro.obs.metrics.MetricsRegistry` by default, so unit
        tests never share counters; ``repro serve`` passes one shared
        registry through the whole pipeline).  ``tracer`` controls
        per-query span sampling and the slow-query log; by default a
        tracer with sampling off (and no slow threshold) is created on
        the same registry.
        """
        if max_batch_size <= 0:
            raise ValueError("max_batch_size must be positive")
        if max_latency_s < 0:
            raise ValueError("max_latency_s must be non-negative")
        if cache_size < 0:
            raise ValueError("cache_size must be non-negative")
        if n_executors <= 0:
            raise ValueError("n_executors must be positive")
        self._source = source
        self.max_batch_size = int(max_batch_size)
        self.max_latency_s = float(max_latency_s)
        self.cache_size = int(cache_size)
        self.cache_decimals = int(cache_decimals)
        self.n_executors = int(n_executors)
        # (embedding, cache key, ticket, tenant); a batch never mixes tenants.
        self._pending: List[
            Tuple[np.ndarray, Optional[Tuple[object, bytes]], QueryTicket, Optional[str]]
        ] = []
        self._wakeup = threading.Condition()
        self._cache: "OrderedDict[Tuple[object, bytes], Prediction]" = OrderedDict()
        if registry is None:
            registry = MetricsRegistry()
        self.registry = registry
        self.stats = SchedulerStats(registry)
        self.tracer = tracer if tracer is not None else Tracer(registry)
        self._latency_hist = registry.histogram(
            "repro_query_latency_seconds",
            "End-to-end query latency from submit to fulfilment (cache hits included).",
        )
        self._queue_wait_hist = registry.histogram(
            "repro_scheduler_queue_wait_seconds",
            "Time queries wait in the pending queue before batch execution.",
        )
        self._batch_size_hist = registry.histogram(
            "repro_scheduler_batch_size",
            "Executed micro-batch sizes.",
            buckets=obs_metrics.SIZE_BUCKETS,
        )
        registry.gauge(
            "repro_scheduler_queue_depth", "Queries currently waiting for a batch."
        ).set_function(lambda: float(len(self._pending)))
        self._thread: Optional[threading.Thread] = None
        self._pool: Optional[ThreadPoolExecutor] = None
        self._running = False

    # ---------------------------------------------------------------- lifecycle
    @property
    def running(self) -> bool:
        """Whether the background flusher thread is active."""
        return self._thread is not None

    @property
    def source(self):
        """Whatever supplies ``snapshot()`` (the deployment manager)."""
        return self._source

    def start(self) -> "BatchScheduler":
        """Run the background flusher (batches age out after max_latency_s)."""
        if self._thread is None:
            self._running = True
            if self.n_executors > 1:
                self._pool = ThreadPoolExecutor(
                    max_workers=self.n_executors, thread_name_prefix="batch-exec"
                )
            self._thread = threading.Thread(target=self._run, name="batch-scheduler", daemon=True)
            self._thread.start()
        return self

    def stop(self) -> None:
        """Stop the flusher, wait out in-flight batches and drain the rest."""
        thread = self._thread
        if thread is not None:
            with self._wakeup:
                self._running = False
                self._wakeup.notify_all()
            thread.join(timeout=30.0)
            self._thread = None
        if self._pool is not None:
            self._pool.shutdown(wait=True)
            self._pool = None
        self.flush()

    def __enter__(self) -> "BatchScheduler":
        return self.start()

    def __exit__(self, *exc_info) -> None:
        self.stop()

    # ------------------------------------------------------------------- submit
    @staticmethod
    def _snapshot_token(snapshot) -> object:
        """The snapshot state a cached prediction depends on: generation
        *and* index signature (spec/rerank), so swapping a deployment's
        index configuration can never serve stale cached predictions across
        generations that happen to share a counter value."""
        return getattr(snapshot, "cache_token", snapshot.generation)

    def _source_for(self, tenant: Optional[str]):
        """The snapshot source serving ``tenant`` (``None`` = the direct
        source).  Multi-tenant sources (a
        :class:`~repro.serving.tenancy.TenantRegistry`) expose ``get``; a
        plain :class:`~repro.serving.manager.DeploymentManager` serves only
        the default tenant, so a named tenant against it is an error."""
        if tenant is None:
            return self._source
        getter = getattr(self._source, "get", None)
        if getter is None:
            raise ServingError(
                f"this scheduler serves a single deployment; unknown tenant {tenant!r}"
            )
        return getter(tenant)

    def _cache_key(
        self, embedding: np.ndarray, token: object, tenant: Optional[str]
    ) -> Optional[Tuple[object, bytes]]:
        if self.cache_size == 0:
            return None
        quantized = np.round(embedding, self.cache_decimals) + 0.0  # collapse -0.0
        # The tenant rides inside the token: two tenants at the same
        # (generation, index signature) with byte-identical embeddings must
        # never share a cached prediction.
        return ((tenant, token), quantized.tobytes())

    def submit(self, embedding: np.ndarray, *, tenant: Optional[str] = None) -> QueryTicket:
        """Queue one query embedding; returns immediately with a ticket.

        ``tenant`` routes the query to that tenant's deployment (requires a
        multi-tenant source); unknown tenants fail here, before queueing.
        """
        embedding = np.asarray(embedding, dtype=np.float64).reshape(-1)
        ticket = QueryTicket(time.monotonic())
        ticket.trace = self.tracer.maybe_trace()
        snapshot = self._source_for(tenant).snapshot()
        key = self._cache_key(embedding, self._snapshot_token(snapshot), tenant)
        inline_batch = None
        with self._wakeup:
            self.stats.count_submitted()
            if key is not None:
                lookup_start = time.perf_counter() if ticket.trace is not None else 0.0
                cached = self._cache.get(key)
                if cached is not None:
                    self._cache.move_to_end(key)
                    self.stats.count_cache_hit()
                    ticket._fulfil(
                        cached, time.monotonic(), cached=True, generation=snapshot.generation
                    )
                    if ticket.trace is not None:
                        ticket.trace.add(
                            "cache_lookup", time.perf_counter() - lookup_start, hit=True
                        )
                    latency = ticket.latency_s
                    self._latency_hist.observe(latency)
                    self.tracer.finish(ticket.trace, latency, cached=True)
                    return ticket
                self.stats.count_cache_miss()
                if ticket.trace is not None:
                    ticket.trace.add(
                        "cache_lookup", time.perf_counter() - lookup_start, hit=False
                    )
            self._pending.append((embedding, key, ticket, tenant))
            if len(self._pending) >= self.max_batch_size:
                if self._thread is None:
                    inline_batch = self._take_batch_locked()
                else:
                    self._wakeup.notify()
        if inline_batch:
            self._execute(inline_batch)
        return ticket

    def classify(
        self,
        embeddings: np.ndarray,
        *,
        timeout: Optional[float] = _DEFAULT_RESULT_TIMEOUT_S,
        tenant: Optional[str] = None,
    ) -> List[Prediction]:
        """Submit a block of embeddings and wait for all results."""
        block = np.atleast_2d(np.asarray(embeddings, dtype=np.float64))
        tickets = [self.submit(embedding, tenant=tenant) for embedding in block]
        if self._thread is None:
            self.flush()
        return [ticket.result(timeout) for ticket in tickets]

    # -------------------------------------------------------------------- flush
    def _take_batch_locked(self) -> List[Tuple]:
        """Pop the next batch off ``_pending`` (wakeup lock held).

        A batch classifies against exactly one snapshot, so it must hold
        exactly one tenant: take the oldest query's tenant and collect up
        to ``max_batch_size`` queries for the *same* tenant, preserving
        per-tenant FIFO order.  Other tenants' queries stay queued and form
        the next batch.
        """
        if not self._pending:
            return []
        tenant = self._pending[0][3]
        batch: List[Tuple] = []
        kept: List[Tuple] = []
        for entry in self._pending:
            if entry[3] == tenant and len(batch) < self.max_batch_size:
                batch.append(entry)
            else:
                kept.append(entry)
        self._pending[:] = kept
        return batch

    def flush(self) -> None:
        """Synchronously drain every pending query on the calling thread."""
        while True:
            with self._wakeup:
                batch = self._take_batch_locked()
            if not batch:
                return
            self._execute(batch)

    def _run(self) -> None:
        while True:
            with self._wakeup:
                while self._running and not self._pending:
                    self._wakeup.wait(timeout=0.05)
                if not self._running and not self._pending:
                    return
                if self._running and self._pending and len(self._pending) < self.max_batch_size:
                    # Wait out the oldest query's latency budget; new
                    # arrivals may fill the batch meanwhile.
                    deadline = self._pending[0][2].submitted_at + self.max_latency_s
                    remaining = deadline - time.monotonic()
                    if remaining > 0:
                        self._wakeup.wait(timeout=remaining)
                batch = self._take_batch_locked()
            if batch:
                if self._pool is not None:
                    # Replica-parallel mode: hand the ready batch to the
                    # executor pool and go straight back to coalescing; up
                    # to n_executors batches classify concurrently, each
                    # routed to a different read replica.
                    self._pool.submit(self._execute, batch)
                else:
                    self._execute(batch)

    # ------------------------------------------------------------------ execute
    def _execute(
        self,
        batch: Sequence[
            Tuple[np.ndarray, Optional[Tuple[object, bytes]], QueryTicket, Optional[str]]
        ],
    ) -> None:
        tenant = batch[0][3]  # _take_batch_locked guarantees one tenant per batch
        execute_start = time.monotonic()
        traced = any(ticket.trace is not None for _, _, ticket, _ in batch)
        collector = obs_tracing.push() if traced else None
        try:
            with obs_tracing.timed("batch_assemble", batch_size=len(batch)):
                embeddings = np.stack([embedding for embedding, _, _, _ in batch])
            try:
                # Resolved per batch: the tenant may have been dropped
                # between submit and execute, which must fail these tickets,
                # not crash the flusher thread.
                snapshot = self._source_for(tenant).snapshot()
                predictions = snapshot.predict(embeddings)
            except Exception as error:
                now = time.monotonic()
                self.stats.count_batch(len(batch))
                self.stats.count_failed(len(batch))
                message = f"{type(error).__name__}: {error}"
                self._observe_batch(batch, execute_start, now, collector, failed=True)
                for _, _, ticket, _ in batch:
                    ticket._fail(message, now)
                return
        finally:
            if collector is not None:
                obs_tracing.pop()
        now = time.monotonic()
        with self._wakeup:
            self.stats.count_batch(len(batch))
            self.stats.count_completed(len(batch))
            if self.cache_size:
                served_token = (tenant, self._snapshot_token(snapshot))
                for (_, key, _, _), prediction in zip(batch, predictions):
                    if key is None:
                        continue
                    # Key under the snapshot actually served, so a swap
                    # between submit and execute can't poison the cache.
                    self._cache[(served_token, key[1])] = prediction
                    self._cache.move_to_end((served_token, key[1]))
                while len(self._cache) > self.cache_size:
                    self._cache.popitem(last=False)
        self._observe_batch(batch, execute_start, now, collector, failed=False)
        for (_, _, ticket, _), prediction in zip(batch, predictions):
            ticket._fulfil(prediction, now, generation=snapshot.generation)

    def _observe_batch(self, batch, execute_start, resolved_at, collector, *, failed: bool) -> None:
        """Feed histograms and finish traces as a batch resolves.

        Called *before* the tickets are fulfilled, so a client that has its
        result (and a scrape racing it) is guaranteed the batch's telemetry
        already landed; ``resolved_at`` is the same timestamp the tickets are
        fulfilled with, making these latencies identical to
        ``ticket.latency_s``.  Runs for every batch; span distribution only
        touches the tickets that were actually sampled.
        """
        self._batch_size_hist.observe(len(batch))
        batch_seconds = time.monotonic() - execute_start
        queue_waits = []
        latencies = []
        for _, _, ticket, _ in batch:
            queue_wait = execute_start - ticket.submitted_at
            queue_waits.append(queue_wait)
            latency = resolved_at - ticket.submitted_at
            latencies.append(latency)
            trace = ticket.trace
            if trace is not None:
                trace.add("queue_wait", queue_wait)
                trace.add("batch_execute", batch_seconds, batch_size=len(batch))
                if collector:
                    trace.extend(collector)
            self.tracer.finish(trace, latency, failed=failed)
        # Batched observes: two lock round-trips per batch, not per query.
        self._queue_wait_hist.observe_many(queue_waits)
        self._latency_hist.observe_many(latencies)
