"""Micro-batched query scheduling for the serving layer.

The batched :meth:`~repro.core.classifier.KNNClassifier.predict` path is an
order of magnitude cheaper per query than classifying one trace at a time,
but a serving front-end receives queries one at a time.
:class:`BatchScheduler` closes that gap: submitted queries are coalesced
into micro-batches bounded by ``max_batch_size`` (throughput knob) and
``max_latency_s`` (tail-latency knob — the longest any query waits for
company), and every batch classifies against one consistent
:class:`~repro.serving.manager.ServingSnapshot`, so an adaptation swap
mid-stream can never tear a batch.

An LRU cache keyed on ``(snapshot generation, quantized embedding bytes)``
short-circuits repeated queries — the paper's victims revisit pages, and
TLS traces quantize to identical embeddings more often than raw floats
suggest.  The generation in the key invalidates the whole cache the moment
an adaptation swap lands, for free.

The scheduler runs in two modes: with :meth:`start` (or as a context
manager) a background thread flushes batches as they fill or age out;
without it, full batches execute inline on ``submit`` and :meth:`flush`
drains the tail — deterministic, for tests and single-threaded replay.
"""

from __future__ import annotations

import threading
import time
from collections import OrderedDict
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.core.classifier import Prediction
from repro.serving.sharded_store import ServingError

_DEFAULT_RESULT_TIMEOUT_S = 60.0


@dataclass
class SchedulerStats:
    """Counters the serving bench reports."""

    submitted: int = 0
    completed: int = 0
    failed: int = 0
    batches: int = 0
    cache_hits: int = 0
    cache_misses: int = 0
    largest_batch: int = 0

    @property
    def cache_hit_rate(self) -> float:
        looked_up = self.cache_hits + self.cache_misses
        return self.cache_hits / looked_up if looked_up else 0.0

    def as_dict(self) -> Dict[str, float]:
        return {
            "submitted": self.submitted,
            "completed": self.completed,
            "failed": self.failed,
            "batches": self.batches,
            "cache_hits": self.cache_hits,
            "cache_misses": self.cache_misses,
            "largest_batch": self.largest_batch,
            "cache_hit_rate": self.cache_hit_rate,
        }


class QueryTicket:
    """Handle for one submitted query; :meth:`result` blocks until classified."""

    __slots__ = ("_done", "_prediction", "_error", "submitted_at", "completed_at", "cached")

    def __init__(self, submitted_at: float) -> None:
        self._done = threading.Event()
        self._prediction: Optional[Prediction] = None
        self._error: Optional[str] = None
        self.submitted_at = submitted_at
        self.completed_at: Optional[float] = None
        self.cached = False

    def _fulfil(self, prediction: Prediction, completed_at: float, *, cached: bool = False) -> None:
        self._prediction = prediction
        self.completed_at = completed_at
        self.cached = cached
        self._done.set()

    def _fail(self, message: str, completed_at: float) -> None:
        self._error = message
        self.completed_at = completed_at
        self._done.set()

    def done(self) -> bool:
        return self._done.is_set()

    @property
    def failed(self) -> bool:
        return self._done.is_set() and self._error is not None

    @property
    def latency_s(self) -> Optional[float]:
        if self.completed_at is None:
            return None
        return self.completed_at - self.submitted_at

    def result(self, timeout: Optional[float] = _DEFAULT_RESULT_TIMEOUT_S) -> Prediction:
        if not self._done.wait(timeout):
            raise ServingError("timed out waiting for the query result")
        if self._error is not None:
            raise ServingError(f"query failed: {self._error}")
        assert self._prediction is not None
        return self._prediction


class BatchScheduler:
    """Coalesce single-query submissions into micro-batched classification."""

    def __init__(
        self,
        source,
        *,
        max_batch_size: int = 64,
        max_latency_s: float = 0.002,
        cache_size: int = 4096,
        cache_decimals: int = 6,
    ) -> None:
        """``source`` is anything with ``snapshot() -> ServingSnapshot``
        (a :class:`~repro.serving.manager.DeploymentManager` in practice)."""
        if max_batch_size <= 0:
            raise ValueError("max_batch_size must be positive")
        if max_latency_s < 0:
            raise ValueError("max_latency_s must be non-negative")
        if cache_size < 0:
            raise ValueError("cache_size must be non-negative")
        self._source = source
        self.max_batch_size = int(max_batch_size)
        self.max_latency_s = float(max_latency_s)
        self.cache_size = int(cache_size)
        self.cache_decimals = int(cache_decimals)
        self._pending: List[Tuple[np.ndarray, Optional[Tuple[int, bytes]], QueryTicket]] = []
        self._wakeup = threading.Condition()
        self._cache: "OrderedDict[Tuple[int, bytes], Prediction]" = OrderedDict()
        self.stats = SchedulerStats()
        self._thread: Optional[threading.Thread] = None
        self._running = False

    # ---------------------------------------------------------------- lifecycle
    @property
    def running(self) -> bool:
        return self._thread is not None

    def start(self) -> "BatchScheduler":
        """Run the background flusher (batches age out after max_latency_s)."""
        if self._thread is None:
            self._running = True
            self._thread = threading.Thread(target=self._run, name="batch-scheduler", daemon=True)
            self._thread.start()
        return self

    def stop(self) -> None:
        """Stop the flusher and drain anything still pending."""
        thread = self._thread
        if thread is not None:
            with self._wakeup:
                self._running = False
                self._wakeup.notify_all()
            thread.join(timeout=30.0)
            self._thread = None
        self.flush()

    def __enter__(self) -> "BatchScheduler":
        return self.start()

    def __exit__(self, *exc_info) -> None:
        self.stop()

    # ------------------------------------------------------------------- submit
    def _cache_key(self, embedding: np.ndarray, generation: int) -> Optional[Tuple[int, bytes]]:
        if self.cache_size == 0:
            return None
        quantized = np.round(embedding, self.cache_decimals) + 0.0  # collapse -0.0
        return (generation, quantized.tobytes())

    def submit(self, embedding: np.ndarray) -> QueryTicket:
        """Queue one query embedding; returns immediately with a ticket."""
        embedding = np.asarray(embedding, dtype=np.float64).reshape(-1)
        ticket = QueryTicket(time.monotonic())
        key = self._cache_key(embedding, self._source.snapshot().generation)
        inline_batch = None
        with self._wakeup:
            self.stats.submitted += 1
            if key is not None:
                cached = self._cache.get(key)
                if cached is not None:
                    self._cache.move_to_end(key)
                    self.stats.cache_hits += 1
                    self.stats.completed += 1
                    ticket._fulfil(cached, time.monotonic(), cached=True)
                    return ticket
                self.stats.cache_misses += 1
            self._pending.append((embedding, key, ticket))
            if len(self._pending) >= self.max_batch_size:
                if self._thread is None:
                    inline_batch = self._pending[: self.max_batch_size]
                    del self._pending[: len(inline_batch)]
                else:
                    self._wakeup.notify()
        if inline_batch:
            self._execute(inline_batch)
        return ticket

    def classify(
        self, embeddings: np.ndarray, *, timeout: Optional[float] = _DEFAULT_RESULT_TIMEOUT_S
    ) -> List[Prediction]:
        """Submit a block of embeddings and wait for all results."""
        block = np.atleast_2d(np.asarray(embeddings, dtype=np.float64))
        tickets = [self.submit(embedding) for embedding in block]
        if self._thread is None:
            self.flush()
        return [ticket.result(timeout) for ticket in tickets]

    # -------------------------------------------------------------------- flush
    def flush(self) -> None:
        """Synchronously drain every pending query on the calling thread."""
        while True:
            with self._wakeup:
                batch = self._pending[: self.max_batch_size]
                del self._pending[: len(batch)]
            if not batch:
                return
            self._execute(batch)

    def _run(self) -> None:
        while True:
            with self._wakeup:
                while self._running and not self._pending:
                    self._wakeup.wait(timeout=0.05)
                if not self._running and not self._pending:
                    return
                if self._running and self._pending and len(self._pending) < self.max_batch_size:
                    # Wait out the oldest query's latency budget; new
                    # arrivals may fill the batch meanwhile.
                    deadline = self._pending[0][2].submitted_at + self.max_latency_s
                    remaining = deadline - time.monotonic()
                    if remaining > 0:
                        self._wakeup.wait(timeout=remaining)
                batch = self._pending[: self.max_batch_size]
                del self._pending[: len(batch)]
            if batch:
                self._execute(batch)

    # ------------------------------------------------------------------ execute
    def _execute(self, batch: Sequence[Tuple[np.ndarray, Optional[Tuple[int, bytes]], QueryTicket]]) -> None:
        snapshot = self._source.snapshot()
        embeddings = np.stack([embedding for embedding, _, _ in batch])
        try:
            predictions = snapshot.predict(embeddings)
        except Exception as error:
            now = time.monotonic()
            with self._wakeup:
                self.stats.batches += 1
                self.stats.failed += len(batch)
            message = f"{type(error).__name__}: {error}"
            for _, _, ticket in batch:
                ticket._fail(message, now)
            return
        now = time.monotonic()
        with self._wakeup:
            self.stats.batches += 1
            self.stats.completed += len(batch)
            self.stats.largest_batch = max(self.stats.largest_batch, len(batch))
            if self.cache_size:
                for (_, key, _), prediction in zip(batch, predictions):
                    if key is None:
                        continue
                    # Key under the generation actually served, so a swap
                    # between submit and execute can't poison the cache.
                    self._cache[(snapshot.generation, key[1])] = prediction
                    self._cache.move_to_end((snapshot.generation, key[1]))
                while len(self._cache) > self.cache_size:
                    self._cache.popitem(last=False)
        for (_, _, ticket), prediction in zip(batch, predictions):
            ticket._fulfil(prediction, now)
