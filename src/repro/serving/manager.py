"""Zero-downtime deployment management for the serving layer.

The paper's operational story is a fingerprinter that keeps classifying
while its reference corpus churns.  :class:`DeploymentManager` makes that
concrete: the live serving state is one immutable
:class:`ServingSnapshot` (sharded store + classifier + optional open-world
detector), and every adaptation builds a *new* snapshot through the
sharded store's copy-on-write operations and swaps it in with a single
reference assignment.  In-flight batches keep the snapshot they grabbed, so
serving never blocks on — and never observes a torn state from — an update;
that is the "zero failed queries during replace_class" guarantee the
serving bench asserts.

Warm restarts reuse the deployment persistence layer:
:meth:`DeploymentManager.load` restores a saved deployment with
:func:`~repro.core.deployment.load_deployment` and shards its corpus;
:meth:`DeploymentManager.save` collapses the live sharded corpus back into
the attached fingerprinter and persists it with
:func:`~repro.core.deployment.save_deployment`.
"""

from __future__ import annotations

import os
import threading
import time
from dataclasses import dataclass
from pathlib import Path
from typing import Dict, List, Optional, Sequence, Tuple, Union

import numpy as np

from repro.config import ClassifierConfig
from repro.core.classifier import KNNClassifier, Prediction
from repro.core.deployment import load_deployment, save_deployment
from repro.core.fingerprinter import AdaptiveFingerprinter
from repro.core.openworld import OpenWorldDetector
from repro.obs.metrics import MetricsRegistry
from repro.serving.sharded_store import ServingError, ShardedReferenceStore

PathLike = Union[str, os.PathLike]


@dataclass(frozen=True)
class OpenWorldConfig:
    """Calibration knobs for the serving-side open-world detector."""

    neighbour: int = 5
    percentile: float = 95.0
    metric: str = "euclidean"


@dataclass(frozen=True)
class ServingSnapshot:
    """One immutable serving state; batches classify against exactly one."""

    store: ShardedReferenceStore
    classifier: KNNClassifier
    detector: Optional[OpenWorldDetector]
    generation: int
    # Stable signature of the index configuration serving this snapshot
    # (kind, rerank, probe counts, ...).  Part of the scheduler's cache key:
    # a redeploy that swaps the index spec must never serve predictions
    # cached under the old spec, even if the generation counter collides
    # (e.g. a fresh manager restarting at generation 0).
    index_signature: str = ""

    @property
    def cache_token(self) -> object:
        """What the result cache may key on besides the query itself."""
        return (self.generation, self.index_signature)

    def predict(self, embeddings: np.ndarray) -> List[Prediction]:
        """Classify a batch against exactly this snapshot's store."""
        return self.classifier.predict(embeddings)

    def is_unknown(self, embeddings: np.ndarray) -> np.ndarray:
        """Open-world detection per embedding (requires a detector)."""
        if self.detector is None:
            raise ServingError("open-world detection is not enabled on this deployment")
        return self.detector.is_unknown(embeddings)


class DeploymentManager:
    """Owns the live serving snapshot and applies retraining-free updates."""

    def __init__(
        self,
        store: ShardedReferenceStore,
        classifier_config: Optional[ClassifierConfig] = None,
        *,
        fingerprinter: Optional[AdaptiveFingerprinter] = None,
        open_world: Optional[OpenWorldConfig] = None,
    ) -> None:
        if classifier_config is None:
            classifier_config = (
                fingerprinter.classifier_config if fingerprinter is not None else ClassifierConfig()
            )
        self.classifier_config = classifier_config
        self.open_world = open_world
        self._fingerprinter = fingerprinter
        self._swap_lock = threading.Lock()
        self._swaps_total = None
        self._swap_seconds = None
        self._snapshot = self._build_snapshot(store, generation=0)

    def attach_metrics(self, registry: MetricsRegistry) -> None:
        """Register deployment telemetry on ``registry``.

        Callback gauges sample live state at scrape time — generation,
        ``drift_ratio``, native-kernel dispatch, and (behind a
        :class:`~repro.serving.sharded_store.ReplicaSet`) per-replica
        routed/in-flight depths; ``repro_deployment_swaps_total`` /
        ``repro_deployment_swap_seconds`` time every copy-on-write swap.
        Also attaches the live store's search instruments
        (:meth:`ShardedReferenceStore.attach_metrics`), which clones
        inherit across swaps.
        """
        registry.gauge(
            "repro_deployment_generation", "Serving generation (bumps on every swap)."
        ).set_function(lambda: float(self.generation))
        registry.gauge(
            "repro_deployment_drift_ratio",
            "Worst per-shard quantizer drift ratio of the live store.",
        ).set_function(lambda: float(self.drift_ratio()))
        registry.gauge(
            "repro_kernels_native_active",
            "Whether shard scans dispatch to the fused native C kernels (1) or NumPy (0).",
        ).set_function(lambda: 1.0 if self.store.kernel_status().get("active") else 0.0)
        self._swaps_total = registry.counter(
            "repro_deployment_swaps_total", "Copy-on-write snapshot swaps applied."
        )
        self._swap_seconds = registry.histogram(
            "repro_deployment_swap_seconds",
            "Time building + swapping one copy-on-write snapshot.",
        )
        executor = self.store.executor
        if hasattr(executor, "routed_counts"):
            routed = registry.gauge(
                "repro_replicas_routed",
                "Searches routed per replica.",
                labels=("replica",),
            )
            inflight = registry.gauge(
                "repro_replicas_in_flight",
                "Searches currently executing per replica.",
                labels=("replica",),
            )
            for position in range(getattr(executor, "n_replicas", 0)):
                routed.set_function(
                    lambda p=position: float(executor.routed_counts()[p]), replica=str(position)
                )
                if hasattr(executor, "inflight_counts"):
                    inflight.set_function(
                        lambda p=position: float(executor.inflight_counts()[p]),
                        replica=str(position),
                    )
        self.store.attach_metrics(registry)

    # ------------------------------------------------------------ construction
    @classmethod
    def from_fingerprinter(
        cls,
        fingerprinter: AdaptiveFingerprinter,
        *,
        n_shards: int = 2,
        assignment: str = "hash",
        executor: Optional[object] = None,
        storage_tier: str = "shm",
        classifier_config: Optional[ClassifierConfig] = None,
        open_world: Optional[OpenWorldConfig] = None,
    ) -> "DeploymentManager":
        """Shard an initialised fingerprinter's reference corpus and serve it."""
        store = ShardedReferenceStore.from_reference_store(
            fingerprinter.reference_store,
            n_shards=n_shards,
            assignment=assignment,
            executor=executor,
            storage_tier=storage_tier,
        )
        return cls(
            store,
            classifier_config if classifier_config is not None else fingerprinter.classifier_config,
            fingerprinter=fingerprinter,
            open_world=open_world,
        )

    @classmethod
    def load(cls, directory: PathLike, **kwargs) -> "DeploymentManager":
        """Warm restart: restore a saved deployment and shard its corpus."""
        return cls.from_fingerprinter(load_deployment(directory), **kwargs)

    def save(self, directory: PathLike) -> Path:
        """Persist the live corpus (and model) for the next warm restart."""
        if self._fingerprinter is None:
            raise ServingError(
                "no fingerprinter attached; the embedding model is required to persist a deployment"
            )
        snapshot = self._snapshot
        flat = snapshot.store.to_reference_store(index=self._fingerprinter.index_factory())
        self._fingerprinter.attach_references(flat)
        return save_deployment(self._fingerprinter, directory)

    # ------------------------------------------------------------------- state
    def snapshot(self) -> ServingSnapshot:
        """The current serving state (an atomic reference read)."""
        return self._snapshot

    @property
    def store(self) -> ShardedReferenceStore:
        """The live snapshot's sharded reference store."""
        return self._snapshot.store

    @property
    def classifier(self) -> KNNClassifier:
        """The live snapshot's classifier."""
        return self._snapshot.classifier

    @property
    def generation(self) -> int:
        """The live snapshot's generation (bumps on every swap)."""
        return self._snapshot.generation

    @property
    def fingerprinter(self) -> Optional[AdaptiveFingerprinter]:
        """The attached embedding model owner (None for store-only serving)."""
        return self._fingerprinter

    def _build_snapshot(self, store: ShardedReferenceStore, generation: int) -> ServingSnapshot:
        classifier = KNNClassifier(store, self.classifier_config)
        detector = None
        if self.open_world is not None and len(store):
            detector = OpenWorldDetector(
                store,
                neighbour=self.open_world.neighbour,
                percentile=self.open_world.percentile,
                metric=self.open_world.metric,
            )
        return ServingSnapshot(
            store=store,
            classifier=classifier,
            detector=detector,
            generation=generation,
            index_signature=repr(sorted(store.index_spec().items())),
        )

    # ----------------------------------------------- zero-downtime adaptation
    def _swap(self, build_store) -> ServingSnapshot:
        swap_start = time.perf_counter()
        with self._swap_lock:
            old = self._snapshot
            new_store = build_store(old.store)
            snapshot = self._build_snapshot(new_store, old.generation + 1)
            self._snapshot = snapshot
        self._count_swap(time.perf_counter() - swap_start)
        return snapshot

    def _count_swap(self, seconds: float) -> None:
        if self._swaps_total is not None:
            self._swaps_total.inc()
        if self._swap_seconds is not None:
            self._swap_seconds.observe(seconds)

    def add_class(self, label: str, embeddings: np.ndarray) -> ServingSnapshot:
        """Start monitoring a page (copy-on-write shard swap)."""
        return self._swap(lambda store: store.with_class_added(label, embeddings))

    def remove_class(self, label: str) -> ServingSnapshot:
        """Stop monitoring a page (copy-on-write shard swap)."""
        return self._swap(lambda store: store.with_class_removed(label))

    def replace_class(self, label: str, embeddings: np.ndarray) -> ServingSnapshot:
        """Refresh a drifted page's references (copy-on-write shard swap)."""
        return self._swap(lambda store: store.with_class_replaced(label, embeddings))

    def set_storage_tier(self, tier: str, shard_ids: Optional[Sequence[int]] = None) -> None:
        """Flip how the live store publishes shard segments to workers.

        ``"shm"`` keeps segments resident in POSIX shared memory (hot),
        ``"mmap"`` spills them to disk and lets workers read them off the
        page cache (cold).  Answers are bit-identical either way, so no
        snapshot swap is needed — affected shards simply republish on the
        next scatter.
        """
        with self._swap_lock:
            self._snapshot.store.set_storage_tier(tier, shard_ids)

    def rebalance(
        self, *, threshold: float = 0.25, max_moves: Optional[int] = None
    ) -> List[Tuple[str, int, int]]:
        """Relieve shard skew with a zero-downtime copy-on-write swap.

        Moves whole classes from overloaded to underloaded shards until the
        per-shard row spread is within ``threshold * mean``; global row ids
        never change, so predictions before and after are identical — only
        scatter load shifts.  Returns the ``(label, from, to)`` moves (empty
        when already balanced, in which case no swap happens and in-flight
        caches stay warm).
        """
        swap_start = time.perf_counter()
        with self._swap_lock:
            old = self._snapshot
            new_store, moves = old.store.with_rebalanced(threshold=threshold, max_moves=max_moves)
            if moves:
                self._snapshot = self._build_snapshot(new_store, old.generation + 1)
        if moves:
            self._count_swap(time.perf_counter() - swap_start)
        return moves

    def drift_ratio(self) -> float:
        """The live store's worst per-shard quantizer drift ratio."""
        return self._snapshot.store.drift_ratio()

    def retrain_needed(self, *, threshold: float = 1.5, min_samples: int = 64) -> bool:
        """Whether adaptation churn has drifted any shard's quantizer far
        enough that :meth:`requantize` would pay off."""
        return self._snapshot.store.retrain_needed(
            threshold=threshold, min_samples=min_samples
        )

    def requantize(self, *, sample_size: Optional[int] = None) -> ServingSnapshot:
        """Re-train every shard's quantizer on the current corpus behind a
        zero-downtime copy-on-write swap.

        The drift-aware half of the paper's adaptation story: churn keeps
        the *references* current without retraining the embedding model,
        and this keeps the *index* current without interrupting serving.
        Shards are re-trained on a clone (``sample_size`` caps the k-means
        training subsample per shard), then swapped in with a generation
        bump — in-flight batches finish on the old snapshot, and the bumped
        generation invalidates the scheduler's result cache so no stale
        prediction survives the new quantization.
        """
        return self._swap(lambda store: store.with_requantized(sample_size=sample_size))

    def adapt(self, traces: Sequence, *, replace: bool = True) -> ServingSnapshot:
        """Apply fresh traces through the attached model (no retraining).

        The serving twin of :meth:`AdaptiveFingerprinter.adapt`: traces are
        embedded with the attached model, grouped by label, and applied as
        copy-on-write replace/add swaps.
        """
        if self._fingerprinter is None:
            raise ServingError("no fingerprinter attached; cannot embed traces")
        if not traces:
            raise ValueError("adapt requires at least one trace")
        by_label: Dict[str, List[np.ndarray]] = {}
        for trace in traces:
            by_label.setdefault(trace.label, []).append(trace.as_model_input())
        snapshot = self._snapshot
        for label, inputs in by_label.items():
            embeddings = self._fingerprinter.model.embed(np.stack(inputs))
            if replace and self._snapshot.store.has_class(label):
                snapshot = self.replace_class(label, embeddings)
            else:
                snapshot = self.add_class(label, embeddings)
        return snapshot

    # ------------------------------------------------------------------- close
    def close(self) -> None:
        """Shut down the shard executor (worker processes, shared memory)."""
        executor = self._snapshot.store.executor
        close = getattr(executor, "close", None)
        if close is not None:
            close()

    def __enter__(self) -> "DeploymentManager":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()
