"""The serving subsystem: answering trace queries at deployment scale.

PR 1 made one query cheap; this layer makes a *stream* of queries cheap
while the reference corpus churns, which is the paper's actual operating
mode (an adversary monitoring pages for months, adapting as they change):

* :class:`~repro.serving.sharded_store.ShardedReferenceStore` — monitored
  classes partitioned across per-shard store+index pairs; merged top-k is
  interchangeable with a flat store's.  Shard scatter runs in-process or
  across worker processes with shared-memory embedding buffers
  (:class:`~repro.serving.sharded_store.ProcessShardExecutor`).
* :class:`~repro.serving.scheduler.BatchScheduler` — coalesces single
  queries into micro-batches (``max_batch_size`` / ``max_latency_s``) for
  the batched k-NN path, with an LRU cache keyed on quantized embeddings.
* :class:`~repro.serving.manager.DeploymentManager` — owns the live
  serving snapshot; adaptation lands as a copy-on-write shard swap, so
  serving never blocks on (or tears under) a retraining-free update, and
  warm restarts reuse ``save_deployment``/``load_deployment``.
* :class:`~repro.serving.loadgen.LoadGenerator` — replays open-world trace
  mixes (uniform or hot-class Zipf) and reports throughput and p50/p99
  latency (``repro serve-bench`` -> ``BENCH_2.json``).
* :class:`~repro.serving.frontend.FrontendServer` +
  :mod:`repro.serving.protocol` — the asyncio TCP front-end: length-prefixed
  binary frames (packed float32 query batches, JSON control messages) into
  the scheduler, structured error frames for every malformed input
  (``repro serve`` / ``repro serve-bench --transport tcp`` ->
  ``BENCH_4.json``).
* :class:`~repro.serving.sharded_store.ReplicaSet` — R read replicas of the
  shard scatter behind a round-robin/least-loaded router; process replicas
  attach one shared publication of the (PQ-compressed) index segments.

Every component reports through :mod:`repro.obs`: scheduler, front-end,
store and deployment metrics live in one
:class:`~repro.obs.metrics.MetricsRegistry` (scraped via the ``metrics``
control op or ``repro serve --metrics-port``), and sampled queries carry
per-stage :mod:`~repro.obs.tracing` spans — see ``docs/observability.md``.
"""

from repro.serving.frontend import FrontendServer, FrontendStats
from repro.serving.loadgen import (
    LatencyReport,
    LoadGenerator,
    NetworkLoadGenerator,
    NetworkReplayResult,
    ReplayResult,
    open_world_mix,
)
from repro.serving.manager import DeploymentManager, OpenWorldConfig, ServingSnapshot
from repro.serving.protocol import FrontendClient, ProtocolError
from repro.serving.scheduler import BatchScheduler, QueryTicket, SchedulerStats
from repro.serving.sharded_store import (
    InProcessShardExecutor,
    ProcessShardExecutor,
    ReplicaSet,
    SegmentPublisher,
    ServingError,
    ShardedReferenceStore,
)
from repro.serving.tenancy import DEFAULT_TENANT, TenantRegistry, UnknownTenantError

__all__ = [
    "BatchScheduler",
    "DEFAULT_TENANT",
    "DeploymentManager",
    "FrontendClient",
    "FrontendServer",
    "FrontendStats",
    "InProcessShardExecutor",
    "LatencyReport",
    "LoadGenerator",
    "NetworkLoadGenerator",
    "NetworkReplayResult",
    "OpenWorldConfig",
    "ProcessShardExecutor",
    "ProtocolError",
    "QueryTicket",
    "ReplayResult",
    "ReplicaSet",
    "SchedulerStats",
    "SegmentPublisher",
    "ServingError",
    "ServingSnapshot",
    "ShardedReferenceStore",
    "TenantRegistry",
    "UnknownTenantError",
    "open_world_mix",
]
