"""The serve-bench measurement behind ``repro serve-bench`` -> BENCH_2.json.

Replays a synthetic open-world trace mix through the serving subsystem and
records the numbers that matter for the deployment story:

* **Correctness under sharding + batching** — the sharded, micro-batched
  predictions must be identical to a single-process ``ExactIndex``
  baseline over the same queries.
* **Zero-downtime adaptation** — a ``replace_class`` swap fired halfway
  through the replay must cause zero failed queries.
* **Throughput / latency** — queries/s and p50/p99 per-query latency for
  the single-process baseline, the serial sharded path and (optionally)
  the multiprocessing shared-memory path.

Usage::

    PYTHONPATH=src python -m repro serve-bench [--smoke] [--out BENCH_2.json]
    PYTHONPATH=src python -m repro serve-bench --storage-tier tiered  # BENCH_7

``run_storage_tier_bench`` (``--storage-tier tiered``) compares hot
shared-memory shard publication against cold mmap'd spill files — same
RSG1 segment bytes, bit-identical answers, different residency
(``docs/segment-format.md``).
"""

from __future__ import annotations

import json
import os
import platform
import time
from pathlib import Path
from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.config import ClassifierConfig
from repro.core.classifier import KNNClassifier
from repro.core.index import CoarseQuantizedIndex, ExactIndex, IVFPQIndex
from repro.core.index_bench import clustered_corpus
from repro.core.reference_store import ReferenceStore
from repro.serving.frontend import FrontendServer
from repro.serving.loadgen import LoadGenerator, NetworkLoadGenerator, open_world_mix
from repro.serving.manager import DeploymentManager
from repro.serving.scheduler import BatchScheduler
from repro.serving.sharded_store import (
    InProcessShardExecutor,
    ProcessShardExecutor,
    ReplicaSet,
    ServingError,
    ShardedReferenceStore,
)


def _build_corpus(n_references: int, n_classes: int, dim: int, seed: int):
    corpus = clustered_corpus(n_references, dim, n_clusters=n_classes, seed=seed)
    labels = [f"page-{i % n_classes:04d}" for i in range(n_references)]
    return corpus, labels


def _baseline(flat: ReferenceStore, config: ClassifierConfig, queries: np.ndarray) -> Dict:
    """Single-process ExactIndex predictions + batch timing."""
    classifier = KNNClassifier(flat, config)
    classifier.predict(queries[:8])  # warm up
    start = time.perf_counter()
    predictions = classifier.predict(queries)
    elapsed = time.perf_counter() - start
    return {
        "predictions": predictions,
        "total_s": elapsed,
        "throughput_qps": queries.shape[0] / elapsed,
        "ms_per_query": 1e3 * elapsed / queries.shape[0],
    }


def _replay(
    manager: DeploymentManager,
    queries: np.ndarray,
    *,
    max_batch_size: int,
    max_latency_s: float,
    cache_size: int,
    mid_run=None,
):
    scheduler = BatchScheduler(
        manager, max_batch_size=max_batch_size, max_latency_s=max_latency_s, cache_size=cache_size
    )
    # Background flusher: batches fill to max_batch_size or age out after
    # max_latency_s, so both knobs shape the recorded latency.
    with scheduler:
        result = LoadGenerator(queries).replay(scheduler, mid_run=mid_run)
    return result, scheduler.stats


def _obs_section(result, registry) -> Dict:
    """Latency-telemetry cross-check recorded alongside each bench section.

    Re-derives the replay's p50/p99 from the client-side obs histogram
    (fixed log-spaced buckets) and flags whether each percentile falls
    within one bucket width of the exact ``report_from_latencies`` number —
    the acceptance criterion for the scraped metrics.  Also renders the
    scheduler registry through the strict Prometheus parser so every bench
    run doubles as an exposition round-trip test.
    """
    from repro.obs import parse_prometheus, render_prometheus
    from repro.serving.loadgen import report_from_histogram

    histogram = result.latency_histogram
    exact = result.report
    section: Dict = {"histogram_report": None, "percentile_within_one_bucket": None}
    if histogram is not None and histogram.count() > 0:
        approx = report_from_histogram(histogram, exact.duration_s, exact.failed)
        within: Dict[str, bool] = {}
        for name in ("p50_ms", "p99_ms"):
            exact_s = getattr(exact, name) / 1e3
            estimate_s = getattr(approx, name) / 1e3
            lower, upper = histogram.bucket_bounds(exact_s)
            width = upper - lower  # inf for the overflow bucket
            within[name] = abs(estimate_s - exact_s) <= width
        section["histogram_report"] = approx.as_dict()
        section["percentile_within_one_bucket"] = within
    if registry is not None:
        exposition = render_prometheus(registry)
        try:
            parse_prometheus(exposition)
            section["exposition_valid"] = True
        except ValueError as error:  # pragma: no cover - regression guard
            section["exposition_valid"] = False
            section["exposition_error"] = str(error)
    return section


def _shard_index_factory(
    index_kind: str,
    rerank: int,
    *,
    bits: int = 8,
    opq: bool = False,
    native_kernels: str = "auto",
    max_cell_fraction: Optional[float] = None,
):
    """Per-shard k-NN engine for the bench (engine defaults otherwise)."""
    if index_kind == "exact":
        return lambda: ExactIndex()
    if index_kind == "ivf":
        return lambda: CoarseQuantizedIndex(max_cell_fraction=max_cell_fraction)
    if index_kind == "ivfpq":
        return lambda: IVFPQIndex(
            rerank=rerank,
            bits=bits,
            opq=opq,
            native_kernels=native_kernels,
            max_cell_fraction=max_cell_fraction,
        )
    raise ValueError(f"index_kind must be one of 'exact', 'ivf', 'ivfpq', got {index_kind!r}")


def run_serving_bench(
    *,
    n_references: int = 6000,
    n_classes: int = 120,
    dim: int = 32,
    k: int = 50,
    n_queries: int = 2000,
    n_shards: int = 2,
    max_batch_size: int = 64,
    max_latency_s: float = 0.002,
    cache_size: int = 4096,
    unmonitored_fraction: float = 0.2,
    revisit_fraction: float = 0.1,
    executor: str = "serial",
    assignment: str = "hash",
    index_kind: str = "exact",
    rerank: int = 0,
    bits: int = 8,
    opq: bool = False,
    native_kernels: str = "auto",
    max_cell_fraction: Optional[float] = None,
    storage_dtype: str = "float64",
    storage_tier: str = "shm",
    class_mix: str = "uniform",
    zipf_s: float = 1.2,
    seed: int = 0,
    out: Optional[Path] = None,
) -> Dict:
    """Run the serving bench; returns (and optionally writes) the snapshot.

    ``index_kind``/``rerank``/``storage_dtype`` pick what the shards hold
    and publish: a float32 store halves shared-memory segments, an IVF-PQ
    index with ``rerank == 0`` publishes only uint8 codes + codebooks
    (~16-32x smaller at scale; predictions are then approximate — the
    snapshot records agreement with the exact baseline instead of asserting
    it).
    """
    if executor not in ("serial", "process", "both"):
        raise ValueError("executor must be one of 'serial', 'process', 'both'")
    if n_shards < 2:
        raise ValueError("the serving bench needs >= 2 shards to exercise the merge path")

    corpus, labels = _build_corpus(n_references, n_classes, dim, seed)
    flat = ReferenceStore(dim)
    flat.add(corpus, labels)
    index_factory = _shard_index_factory(
        index_kind,
        rerank,
        bits=bits,
        opq=opq,
        native_kernels=native_kernels,
        max_cell_fraction=max_cell_fraction,
    )
    config = ClassifierConfig(k=k)
    queries, is_unmonitored = open_world_mix(
        corpus,
        n_queries,
        unmonitored_fraction=unmonitored_fraction,
        revisit_fraction=revisit_fraction,
        class_mix=class_mix,
        zipf_s=zipf_s,
        reference_labels=labels if class_mix == "zipf" else None,
        seed=seed + 1,
    )

    baseline = _baseline(flat, config, queries)
    baseline_labels: List[List[str]] = [p.ranked_labels for p in baseline["predictions"]]

    rng = np.random.default_rng(seed + 2)
    victim = labels[0]
    fresh = corpus[: max(4, n_references // n_classes)] + 0.05 * rng.standard_normal(
        (max(4, n_references // n_classes), dim)
    )

    sections: Dict[str, Dict] = {}
    agreement: Dict[str, bool] = {}
    swap_ms: Dict[str, float] = {}
    failed_total = 0
    modes = ("serial", "process") if executor == "both" else (executor,)
    for mode in modes:
        shard_executor = (
            InProcessShardExecutor() if mode == "serial" else ProcessShardExecutor(n_workers=n_shards)
        )
        try:
            manager = DeploymentManager(
                ShardedReferenceStore.from_reference_store(
                    flat,
                    n_shards=n_shards,
                    assignment=assignment,
                    executor=shard_executor,
                    index_factory=index_factory,
                    storage_dtype=storage_dtype,
                    storage_tier=storage_tier,
                ),
                config,
            )
            # Cold pass measures throughput/latency; a second pass over the
            # same stream against the now-warm LRU cache measures the cache
            # (a flood-speed submit loop outruns the flusher, so within one
            # pass a revisit is queued before its source's result lands).
            scheduler = BatchScheduler(
                manager,
                max_batch_size=max_batch_size,
                max_latency_s=max_latency_s,
                cache_size=cache_size,
            )
            with scheduler:
                result = LoadGenerator(queries).replay(scheduler)
                cold_hits = scheduler.stats.cache_hits
                cold_lookups = cold_hits + scheduler.stats.cache_misses
                warm_result = LoadGenerator(queries).replay(scheduler)
            stats = scheduler.stats
            warm_hits = stats.cache_hits - cold_hits
            warm_lookups = (stats.cache_hits + stats.cache_misses) - cold_lookups
            identical = all(
                p is not None and p.ranked_labels == expected
                for replayed in (result, warm_result)
                for p, expected in zip(replayed.predictions, baseline_labels)
            )
            agreement[mode] = identical

            # Rolling adaptation on this executor: replace one monitored
            # class mid-replay; zero queries may fail.
            adapt_manager = DeploymentManager(
                ShardedReferenceStore.from_reference_store(
                    flat,
                    n_shards=n_shards,
                    assignment=assignment,
                    executor=shard_executor,
                    index_factory=index_factory,
                    storage_dtype=storage_dtype,
                    storage_tier=storage_tier,
                ),
                config,
            )

            def swap() -> None:
                start = time.perf_counter()
                adapt_manager.replace_class(victim, fresh)
                swap_ms[mode] = 1e3 * (time.perf_counter() - start)

            adapt_result, adapt_stats = _replay(
                adapt_manager,
                queries,
                max_batch_size=max_batch_size,
                max_latency_s=max_latency_s,
                cache_size=cache_size,
                mid_run=swap,
            )
            failed_total += adapt_result.failed
            if adapt_result.failed:
                raise ServingError(
                    f"{adapt_result.failed} queries failed during the mid-run replace_class "
                    f"swap on the {mode} executor; zero-downtime adaptation is broken"
                )
            shm_bytes = (
                sorted(shard_executor.published_bytes().values())
                if isinstance(shard_executor, ProcessShardExecutor)
                else None
            )
            sections[mode] = {
                "report": result.report.as_dict(),
                "scheduler": stats.as_dict(),
                "warm": {
                    "report": warm_result.report.as_dict(),
                    "cache_hit_rate": warm_hits / warm_lookups if warm_lookups else 0.0,
                },
                "shard_sizes": manager.store.shard_sizes(),
                "shard_memory_bytes": manager.store.shard_memory_bytes(),
                "shm_segment_bytes": shm_bytes,
                "obs": _obs_section(result, scheduler.registry),
                "identical_to_exact_baseline": identical,
                "adaptation": {
                    "swap_ms": swap_ms.get(mode),
                    "failed_queries": adapt_result.failed,
                    "report": adapt_result.report.as_dict(),
                    "scheduler": adapt_stats.as_dict(),
                },
            }
        finally:
            shard_executor.close()

    from repro.core.kernels import kernel_status

    snapshot = {
        "snapshot": "BENCH_2",
        "platform": {
            "python": platform.python_version(),
            "numpy": np.__version__,
            "machine": platform.machine(),
            "native_kernels": kernel_status(),
        },
        "workload": {
            "n_references": n_references,
            "n_classes": n_classes,
            "dim": dim,
            "k": k,
            "n_queries": n_queries,
            "unmonitored_fraction": unmonitored_fraction,
            "revisit_fraction": revisit_fraction,
            "n_unmonitored": int(is_unmonitored.sum()),
            "n_shards": n_shards,
            "max_batch_size": max_batch_size,
            "max_latency_s": max_latency_s,
            "assignment": assignment,
            "index": index_kind,
            "rerank": rerank,
            "native_kernels": native_kernels,
            "max_cell_fraction": max_cell_fraction,
            "storage_dtype": storage_dtype,
            "storage_tier": storage_tier,
            "class_mix": class_mix,
            "zipf_s": zipf_s if class_mix == "zipf" else None,
        },
        "baseline_float64_shard_bytes": int(flat.embeddings.nbytes) // n_shards,
        "baseline_exact_single_process": {
            "throughput_qps": baseline["throughput_qps"],
            "ms_per_query": baseline["ms_per_query"],
        },
        "serving": sections,
        "identical_to_exact_baseline": agreement,
        "adaptation": {
            "replaced_class": victim,
            "swap_ms": swap_ms,
            "failed_queries": failed_total,
        },
    }
    if out is not None:
        out = Path(out)
        out.parent.mkdir(parents=True, exist_ok=True)
        out.write_text(json.dumps(snapshot, indent=2) + "\n")
    return snapshot


def format_summary(snapshot: Dict) -> List[str]:
    """Human-readable lines for the CLI."""
    lines = []
    workload = snapshot["workload"]
    lines.append(
        f"serving bench: N={workload['n_references']} refs, {workload['n_classes']} classes, "
        f"{workload['n_queries']} queries ({workload['n_unmonitored']} open-world), "
        f"{workload['n_shards']} shards, batch<= {workload['max_batch_size']}, "
        f"index={workload.get('index', 'exact')}, dtype={workload.get('storage_dtype', 'float64')}"
    )
    base = snapshot["baseline_exact_single_process"]
    lines.append(
        f"  baseline (single-process exact): {base['throughput_qps']:.0f} q/s, "
        f"{base['ms_per_query']:.3f} ms/query"
    )
    for mode, section in snapshot["serving"].items():
        report = section["report"]
        stats = section["scheduler"]
        adaptation = section["adaptation"]
        warm = section["warm"]
        lines.append(
            f"  sharded/{mode}: {report['throughput_qps']:.0f} q/s, "
            f"p50 {report['p50_ms']:.2f} ms, p99 {report['p99_ms']:.2f} ms, "
            f"{stats['batches']} batches, "
            f"identical to baseline: {section['identical_to_exact_baseline']}"
        )
        lines.append(
            f"    warm replay (LRU cache): {warm['report']['throughput_qps']:.0f} q/s, "
            f"p50 {warm['report']['p50_ms']:.2f} ms, "
            f"cache hit rate {warm['cache_hit_rate']:.2f}"
        )
        lines.append(
            f"    mid-run replace_class('{snapshot['adaptation']['replaced_class']}'): "
            f"swap {adaptation['swap_ms']:.1f} ms, failed queries: {adaptation['failed_queries']}"
        )
        obs = section.get("obs") or {}
        if obs.get("histogram_report"):
            hist_report = obs["histogram_report"]
            within = obs.get("percentile_within_one_bucket") or {}
            lines.append(
                f"    obs histogram: p50 {hist_report['p50_ms']:.2f} ms, "
                f"p99 {hist_report['p99_ms']:.2f} ms "
                f"(within one bucket of exact: {all(within.values()) if within else False}, "
                f"exposition valid: {obs.get('exposition_valid')})"
            )
        resident = section.get("shard_memory_bytes")
        if resident:
            lines.append(
                f"    resident store+index per shard: {', '.join(f'{b/1024:.0f} KiB' for b in resident)}"
            )
        segments = section.get("shm_segment_bytes")
        if segments:
            baseline = snapshot.get("baseline_float64_shard_bytes")
            ratio = (
                f" ({baseline / max(segments):.1f}x smaller than raw float64)"
                if baseline
                else ""
            )
            lines.append(
                f"    shm segment per shard: {', '.join(f'{b/1024:.0f} KiB' for b in segments)}{ratio}"
            )
    return lines


# ------------------------------------------------------------ BENCH_7: storage
def run_storage_tier_bench(
    *,
    n_references: int = 20000,
    n_classes: int = 200,
    dim: int = 32,
    k: int = 50,
    n_queries: int = 512,
    n_shards: int = 3,
    n_workers: int = 2,
    index_kind: str = "ivfpq",
    rerank: int = 0,
    bits: int = 8,
    repeats: int = 3,
    seed: int = 0,
    out: Optional[Path] = None,
) -> Dict:
    """BENCH_7: hot-shm vs cold-mmap shard publication, same RSG1 bytes.

    Runs the identical query batch through a :class:`ProcessShardExecutor`
    with every shard published to shared memory (``storage_tier="shm"``)
    and again with every shard spilled to disk and mmap'd by the workers
    (``storage_tier="mmap"``), then flips a live shm store to mmap with
    :meth:`ShardedReferenceStore.set_storage_tier`.  Records throughput
    per tier, the bytes published per medium, and the acceptance check:
    every configuration must return **bit-identical** ``(distances, ids)``
    — the cold tier trades residency for page-cache reads, never answers.
    """
    corpus, labels = _build_corpus(n_references, n_classes, dim, seed)
    flat = ReferenceStore(dim)
    flat.add(corpus, labels)
    rng = np.random.default_rng(seed + 1)
    picks = rng.integers(0, n_references, n_queries)
    queries = corpus[picks] + 0.01 * rng.standard_normal((n_queries, dim))
    index_factory = _shard_index_factory(index_kind, rerank, bits=bits)
    victim = labels[0]
    per_class = max(4, n_references // n_classes)
    fresh = corpus[:per_class] + 0.05 * rng.standard_normal((per_class, dim))

    sections: Dict[str, Dict] = {}
    answers: Dict[str, Tuple[np.ndarray, np.ndarray]] = {}
    churned: Dict[str, Tuple[np.ndarray, np.ndarray]] = {}
    for tier in ("shm", "mmap"):
        shard_executor = ProcessShardExecutor(n_workers=n_workers)
        try:
            sharded = ShardedReferenceStore.from_reference_store(
                flat,
                n_shards=n_shards,
                executor=shard_executor,
                index_factory=index_factory,
                storage_tier=tier,
            )
            sharded.search(queries[:16], k)  # publish + attach + warm caches
            best = float("inf")
            for _ in range(repeats):
                start = time.perf_counter()
                answers[tier] = sharded.search(queries, k)
                best = min(best, time.perf_counter() - start)
            tier_bytes = sharded.published_tier_bytes()
            # Churn on this tier: the copy-on-write replace republishes the
            # touched shard through the same medium.
            clone = sharded.with_class_replaced(victim, fresh)
            churned[tier] = clone.search(queries, k)
            sections[tier] = {
                "throughput_qps": n_queries / best,
                "ms_per_query": 1e3 * best / n_queries,
                "published_tier_bytes": tier_bytes,
                "resident_shm_bytes": tier_bytes.get("shm", 0),
                "shard_tiers": sharded.shard_tiers(),
            }
        finally:
            shard_executor.close()

    def _identical(a, b) -> bool:
        return bool(np.array_equal(a[0], b[0]) and np.array_equal(a[1], b[1]))

    bit_identical = _identical(answers["shm"], answers["mmap"])
    churn_identical = _identical(churned["shm"], churned["mmap"])

    # Live tier flip: a hot store goes cold without changing one answer.
    flip_executor = ProcessShardExecutor(n_workers=n_workers)
    try:
        sharded = ShardedReferenceStore.from_reference_store(
            flat,
            n_shards=n_shards,
            executor=flip_executor,
            index_factory=index_factory,
            storage_tier="shm",
        )
        before = sharded.search(queries, k)
        sharded.set_storage_tier("mmap")
        after = sharded.search(queries, k)
        flip = {
            "identical": _identical(before, after),
            "published_tier_bytes": sharded.published_tier_bytes(),
        }
    finally:
        flip_executor.close()

    snapshot = {
        "snapshot": "BENCH_7",
        "platform": {
            "python": platform.python_version(),
            "numpy": np.__version__,
            "machine": platform.machine(),
        },
        "workload": {
            "n_references": n_references,
            "n_classes": n_classes,
            "dim": dim,
            "k": k,
            "n_queries": n_queries,
            "n_shards": n_shards,
            "n_workers": n_workers,
            "index": index_kind,
            "rerank": rerank,
            "bits": bits,
            "repeats": repeats,
        },
        "tiers": sections,
        "bit_identical_shm_vs_mmap": bit_identical,
        "bit_identical_after_replace_class": churn_identical,
        "live_tier_flip": flip,
    }
    if out is not None:
        out = Path(out)
        out.parent.mkdir(parents=True, exist_ok=True)
        out.write_text(json.dumps(snapshot, indent=2) + "\n")
    return snapshot


def format_storage_summary(snapshot: Dict) -> List[str]:
    """Human-readable lines for the BENCH_7 storage-tier snapshot."""
    workload = snapshot["workload"]
    lines = [
        f"storage-tier bench: N={workload['n_references']} refs, "
        f"{workload['n_shards']} shards / {workload['n_workers']} workers, "
        f"index={workload['index']}, {workload['n_queries']} queries"
    ]
    for tier, section in snapshot["tiers"].items():
        published = section["published_tier_bytes"]
        lines.append(
            f"  {tier}: {section['throughput_qps']:.0f} q/s, "
            f"{section['ms_per_query']:.3f} ms/query, published "
            + ", ".join(f"{kind}={size / 1024:.0f} KiB" for kind, size in sorted(published.items()))
            + f" (resident shm {section['resident_shm_bytes'] / 1024:.0f} KiB)"
        )
    lines.append(
        f"  bit-identical shm vs mmap: {snapshot['bit_identical_shm_vs_mmap']} "
        f"(after replace_class: {snapshot['bit_identical_after_replace_class']}, "
        f"live flip: {snapshot['live_tier_flip']['identical']})"
    )
    return lines


# ---------------------------------------------------------------- BENCH_4: tcp
def _replica_executor(executor: str, n_replicas: int, n_shards: int, router: str):
    if executor == "serial":
        return ReplicaSet.in_process(n_replicas, router=router)
    return ReplicaSet.processes(n_replicas, n_workers=n_shards, router=router)


def run_frontend_bench(
    *,
    n_references: int = 6000,
    n_classes: int = 120,
    dim: int = 32,
    k: int = 50,
    n_queries: int = 2000,
    n_shards: int = 2,
    replica_counts: Tuple[int, ...] = (1, 2, 4),
    executor: str = "process",
    router: str = "least_loaded",
    max_batch_size: int = 64,
    max_latency_s: float = 0.002,
    cache_size: int = 0,
    n_clients: int = 8,
    request_batch_size: int = 32,
    unmonitored_fraction: float = 0.2,
    revisit_fraction: float = 0.0,
    class_mix: str = "zipf",
    zipf_s: float = 1.2,
    assignment: str = "hash",
    index_kind: str = "exact",
    rerank: int = 0,
    bits: int = 8,
    opq: bool = False,
    native_kernels: str = "auto",
    max_cell_fraction: Optional[float] = None,
    storage_dtype: str = "float64",
    seed: int = 0,
    out: Optional[Path] = None,
) -> Dict:
    """The BENCH_4 measurement: the serving layer over its TCP front-end.

    For each replica count R the same open-world stream (hot-class Zipf mix
    by default) replays twice against a fresh deployment whose shard
    scatter runs through a :class:`ReplicaSet` of R replicas:

    * **in-process** — straight into the scheduler, the BENCH_2 path; this
      is the latency floor the socket hop is compared against.
    * **network** — ``n_clients`` concurrent TCP connections through
      :class:`FrontendServer`, per-request latency measured client-side.

    ``executor="process"`` (the default) backs each replica with worker
    processes attaching one shared publication — the configuration whose
    throughput actually scales with R; ``"serial"`` replicas scan in the
    calling thread and mostly serialise on the GIL (useful as a
    correctness smoke, not a scaling measurement).  The scheduler runs
    ``n_executors=R`` so concurrent batches actually
    reach different replicas, and every network prediction's *full* ranking
    is compared to the single-process exact baseline — replication and the
    wire format must not cost a single bit of agreement (recorded as
    ``identical_to_exact_baseline``; approximate configs such as ivfpq
    ``rerank=0`` record agreement instead of asserting it).

    The result cache defaults *off* here: BENCH_4 measures scatter/replica
    scaling, and cache hits would let repeated queries bypass the replicas.
    """
    if executor not in ("serial", "process"):
        raise ValueError("executor must be 'serial' or 'process'")
    replica_counts = tuple(sorted(set(int(count) for count in replica_counts)))
    if not replica_counts or replica_counts[0] < 1:
        raise ValueError("replica_counts must be positive integers")

    corpus, labels = _build_corpus(n_references, n_classes, dim, seed)
    flat = ReferenceStore(dim)
    flat.add(corpus, labels)
    index_factory = _shard_index_factory(
        index_kind,
        rerank,
        bits=bits,
        opq=opq,
        native_kernels=native_kernels,
        max_cell_fraction=max_cell_fraction,
    )
    config = ClassifierConfig(k=k)
    queries, is_unmonitored = open_world_mix(
        corpus,
        n_queries,
        unmonitored_fraction=unmonitored_fraction,
        revisit_fraction=revisit_fraction,
        class_mix=class_mix,
        zipf_s=zipf_s,
        reference_labels=labels if class_mix == "zipf" else None,
        seed=seed + 1,
    )
    baseline = _baseline(flat, config, queries)
    baseline_labels: List[List[str]] = [p.ranked_labels for p in baseline["predictions"]]
    top_n = max(len(ranked) for ranked in baseline_labels)

    sections: Dict[str, Dict] = {}
    for n_replicas in replica_counts:
        replica_set = _replica_executor(executor, n_replicas, n_shards, router)
        manager = DeploymentManager(
            ShardedReferenceStore.from_reference_store(
                flat,
                n_shards=n_shards,
                assignment=assignment,
                executor=replica_set,
                index_factory=index_factory,
                storage_dtype=storage_dtype,
            ),
            config,
        )
        scheduler = BatchScheduler(
            manager,
            max_batch_size=max_batch_size,
            max_latency_s=max_latency_s,
            cache_size=cache_size,
            n_executors=n_replicas,
        )
        try:
            with scheduler:
                # Warm up before measuring: worker processes fork, attach
                # the published segments and fault their pages on the first
                # scatter — without this the replicas=1 section pays all of
                # it and fakes a scaling win for the later sections.
                LoadGenerator(queries[: 4 * max_batch_size]).replay(scheduler)
                in_process = LoadGenerator(queries).replay(scheduler)
                with FrontendServer(scheduler, manager=manager) as server:
                    loadgen = NetworkLoadGenerator(
                        queries, request_batch_size=request_batch_size, top_n=top_n
                    )
                    NetworkLoadGenerator(
                        queries[: 4 * max_batch_size],
                        request_batch_size=request_batch_size,
                        top_n=top_n,
                    ).replay(server.host, server.port, n_clients=n_clients)
                    network = loadgen.replay(server.host, server.port, n_clients=n_clients)
            identical = network.failed == 0 and all(
                entry is not None and entry[0] == expected
                for entry, expected in zip(network.predictions, baseline_labels)
            )
            shm_bytes = sorted(replica_set.published_bytes().values()) or None
            sections[str(n_replicas)] = {
                "n_replicas": n_replicas,
                "router": router,
                "in_process": in_process.report.as_dict(),
                "network": network.report.as_dict(),
                "routed_counts": replica_set.routed_counts(),
                "obs": _obs_section(network, scheduler.registry),
                "identical_to_exact_baseline": identical,
                "failed_queries": network.failed + in_process.failed,
                "shm_segment_bytes": shm_bytes,
            }
        finally:
            manager.close()

    one = sections[str(replica_counts[0])]["network"]["throughput_qps"]
    cpu_count = os.cpu_count() or 1
    from repro.core.kernels import kernel_status

    snapshot = {
        "snapshot": "BENCH_4",
        "platform": {
            "python": platform.python_version(),
            "numpy": np.__version__,
            "machine": platform.machine(),
            "cpu_count": cpu_count,
            "native_kernels": kernel_status(),
        },
        "workload": {
            "n_references": n_references,
            "n_classes": n_classes,
            "dim": dim,
            "k": k,
            "n_queries": n_queries,
            "n_unmonitored": int(is_unmonitored.sum()),
            "n_shards": n_shards,
            "executor": executor,
            "router": router,
            "replica_counts": list(replica_counts),
            "max_batch_size": max_batch_size,
            "max_latency_s": max_latency_s,
            "cache_size": cache_size,
            "n_clients": n_clients,
            "request_batch_size": request_batch_size,
            "unmonitored_fraction": unmonitored_fraction,
            "revisit_fraction": revisit_fraction,
            "class_mix": class_mix,
            "zipf_s": zipf_s if class_mix == "zipf" else None,
            "assignment": assignment,
            "index": index_kind,
            "rerank": rerank,
            "native_kernels": native_kernels,
            "max_cell_fraction": max_cell_fraction,
            "storage_dtype": storage_dtype,
            "transport": "tcp",
        },
        "baseline_exact_single_process": {
            "throughput_qps": baseline["throughput_qps"],
            "ms_per_query": baseline["ms_per_query"],
        },
        "replicas": sections,
        "scaling": {
            str(count): sections[str(count)]["network"]["throughput_qps"] / one
            for count in replica_counts
        },
        # Replication is read scaling across cores/hosts; a measurement box
        # with fewer cores than replicas caps the observable speedup at ~1x
        # (every replica timeshares the same silicon).  Recorded so the
        # snapshot says which regime it measured.
        "scaling_limited_by_cpu_count": cpu_count < max(replica_counts) * (n_shards + 1),
        "identical_to_exact_baseline": {
            name: section["identical_to_exact_baseline"] for name, section in sections.items()
        },
    }
    if out is not None:
        out = Path(out)
        out.parent.mkdir(parents=True, exist_ok=True)
        out.write_text(json.dumps(snapshot, indent=2) + "\n")
    return snapshot


def format_frontend_summary(snapshot: Dict) -> List[str]:
    """Human-readable lines for ``repro serve-bench --transport tcp``."""
    workload = snapshot["workload"]
    lines = [
        f"frontend bench (tcp): N={workload['n_references']} refs, "
        f"{workload['n_classes']} classes, {workload['n_queries']} queries "
        f"({workload['n_unmonitored']} open-world, {workload['class_mix']} mix), "
        f"{workload['n_shards']} shards, executor={workload['executor']}, "
        f"router={workload['router']}, {workload['n_clients']} clients, "
        f"index={workload['index']}"
    ]
    base = snapshot["baseline_exact_single_process"]
    lines.append(
        f"  baseline (single-process exact): {base['throughput_qps']:.0f} q/s, "
        f"{base['ms_per_query']:.3f} ms/query"
    )
    for name in sorted(snapshot["replicas"], key=int):
        section = snapshot["replicas"][name]
        in_process = section["in_process"]
        network = section["network"]
        lines.append(
            f"  replicas={name}: network {network['throughput_qps']:.0f} q/s "
            f"(p50 {network['p50_ms']:.2f} ms, p99 {network['p99_ms']:.2f} ms, "
            f"{snapshot['scaling'][name]:.2f}x vs 1 replica) | "
            f"in-process {in_process['throughput_qps']:.0f} q/s "
            f"(p50 {in_process['p50_ms']:.2f} ms), "
            f"routed {section['routed_counts']}, "
            f"identical to baseline: {section['identical_to_exact_baseline']}, "
            f"failed: {section['failed_queries']}"
        )
        segments = section.get("shm_segment_bytes")
        if segments:
            lines.append(
                f"    shared shm segments: {', '.join(f'{b/1024:.0f} KiB' for b in segments)} "
                f"(one publication for all {name} replicas)"
            )
        obs = section.get("obs") or {}
        if obs.get("histogram_report"):
            hist_report = obs["histogram_report"]
            within = obs.get("percentile_within_one_bucket") or {}
            lines.append(
                f"    obs histogram (client-side): p50 {hist_report['p50_ms']:.2f} ms, "
                f"p99 {hist_report['p99_ms']:.2f} ms "
                f"(within one bucket of exact: {all(within.values()) if within else False}, "
                f"exposition valid: {obs.get('exposition_valid')})"
            )
    if snapshot.get("scaling_limited_by_cpu_count"):
        lines.append(
            f"  note: only {snapshot['platform']['cpu_count']} CPU core(s) visible — "
            f"replicas timeshare the same silicon, so queries/s cannot scale here; "
            f"run on >= replicas x (shards+1) cores to see read scaling"
        )
    return lines
