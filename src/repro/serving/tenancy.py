"""Multi-tenant serving: many deployments behind one front-end.

The paper's adversary monitors *one* reference corpus; a production
fingerprinting service runs many — one per customer, per vantage point,
per experiment arm — and they must not observe each other.  The
:class:`TenantRegistry` is the whole mechanism: a named map of independent
:class:`~repro.serving.manager.DeploymentManager` instances sharing one
front-end, one scheduler and one metrics registry.

Isolation is enforced at three layers:

* **Routing** — every QUERY frame and control op resolves its tenant name
  through the registry before touching a deployment; an unknown name is a
  structured ``unknown-tenant`` error, never a fallback to someone else's
  corpus.
* **Batching** — the :class:`~repro.serving.scheduler.BatchScheduler`
  never mixes tenants in one micro-batch, because a batch classifies
  against exactly one tenant's snapshot.
* **Caching** — the scheduler's LRU key includes the tenant name next to
  the snapshot's ``cache_token``, so two tenants at the same generation
  with byte-identical embeddings still get predictions from their own
  corpus.

Generations are per-tenant (each deployment manager counts its own
swaps), which is what lets tenant A churn, rebalance and requantize
freely while tenant B's cache stays warm.
"""

from __future__ import annotations

import threading
from typing import Callable, Dict, List, Optional

from repro.serving.manager import DeploymentManager
from repro.serving.protocol import validate_tenant
from repro.serving.sharded_store import ServingError

DEFAULT_TENANT = "default"


class UnknownTenantError(ServingError):
    """A tenant name that no deployment behind this front-end answers to."""

    def __init__(self, tenant: str) -> None:
        super().__init__(f"unknown tenant {tenant!r}")
        self.tenant = tenant


class TenantRegistry:
    """A named map of independent deployments sharing one front-end.

    The registry quacks like a single-tenant scheduler source —
    ``snapshot()`` delegates to the default tenant — so every component
    built before multi-tenancy (benches, the churn harness, the CLI's
    single-tenant path) keeps working unchanged when handed a registry
    instead of a bare manager.
    """

    def __init__(
        self,
        default: DeploymentManager,
        *,
        factory: Optional[Callable[[str], DeploymentManager]] = None,
        max_tenants: int = 64,
    ) -> None:
        """``default`` serves tenant ``"default"`` (and every frame without
        a tenant block).  ``factory`` provisions a fresh deployment when the
        ``tenant create`` control op lands; without one, tenants can only be
        registered in-process via :meth:`register`.  ``max_tenants`` caps
        provisioning so a hostile client cannot exhaust memory by creating
        deployments in a loop."""
        if max_tenants <= 0:
            raise ValueError("max_tenants must be positive")
        self._lock = threading.Lock()
        self._managers: Dict[str, DeploymentManager] = {DEFAULT_TENANT: default}
        self._owned: set = set()  # tenants we provisioned, hence close on drop
        self._factory = factory
        self.max_tenants = int(max_tenants)

    # ------------------------------------------------------------------ lookup
    @property
    def default(self) -> DeploymentManager:
        """The deployment serving tenant ``"default"``."""
        return self._managers[DEFAULT_TENANT]

    def get(self, tenant: Optional[str] = None) -> DeploymentManager:
        """The deployment serving ``tenant`` (``None`` = the default).

        Raises :class:`UnknownTenantError` for names nobody answers to —
        the caller maps that to an ``unknown-tenant`` wire error.
        """
        if tenant is None:
            tenant = DEFAULT_TENANT
        with self._lock:
            manager = self._managers.get(tenant)
        if manager is None:
            raise UnknownTenantError(tenant)
        return manager

    def names(self) -> List[str]:
        """Registered tenant names, default first, the rest sorted."""
        with self._lock:
            others = sorted(name for name in self._managers if name != DEFAULT_TENANT)
        return [DEFAULT_TENANT] + others

    def __contains__(self, tenant: str) -> bool:
        with self._lock:
            return tenant in self._managers

    def __len__(self) -> int:
        with self._lock:
            return len(self._managers)

    # ------------------------------------------------------------ provisioning
    def register(self, tenant: str, manager: DeploymentManager, *, owned: bool = False) -> None:
        """Attach an existing deployment under ``tenant``.

        ``owned`` marks the deployment as provisioned by this registry, so
        :meth:`drop` (and :meth:`close`) also shut down its executor.
        """
        validate_tenant(tenant)
        with self._lock:
            if tenant in self._managers:
                raise ServingError(f"tenant {tenant!r} already exists")
            if len(self._managers) >= self.max_tenants:
                raise ServingError(
                    f"tenant limit reached ({self.max_tenants}); drop one before creating another"
                )
            self._managers[tenant] = manager
            if owned:
                self._owned.add(tenant)

    def create(self, tenant: str) -> DeploymentManager:
        """Provision a fresh deployment for ``tenant`` via the factory."""
        validate_tenant(tenant)
        if self._factory is None:
            raise ServingError(
                "this front-end has no tenant factory; tenants must be registered in-process"
            )
        with self._lock:
            if tenant in self._managers:
                raise ServingError(f"tenant {tenant!r} already exists")
            if len(self._managers) >= self.max_tenants:
                raise ServingError(
                    f"tenant limit reached ({self.max_tenants}); drop one before creating another"
                )
        # Build outside the lock — a factory shards a corpus, which is slow —
        # then publish, re-checking for a racing create of the same name.
        manager = self._factory(tenant)
        with self._lock:
            if tenant in self._managers:
                manager.close()
                raise ServingError(f"tenant {tenant!r} already exists")
            self._managers[tenant] = manager
            self._owned.add(tenant)
        return manager

    def drop(self, tenant: str) -> None:
        """Tear down ``tenant``'s deployment (the default cannot be dropped)."""
        if tenant == DEFAULT_TENANT:
            raise ServingError("the default tenant cannot be dropped")
        with self._lock:
            manager = self._managers.pop(tenant, None)
            owned = tenant in self._owned
            self._owned.discard(tenant)
        if manager is None:
            raise UnknownTenantError(tenant)
        if owned:
            manager.close()

    # --------------------------------------------------------------- reporting
    def describe(self) -> Dict[str, Dict]:
        """Per-tenant shape: generation, references, classes, drift."""
        with self._lock:
            items = list(self._managers.items())
        report = {}
        for name, manager in items:
            store = manager.store
            report[name] = {
                "generation": manager.generation,
                "n_references": len(store),
                "n_classes": store.n_classes,
                "drift_ratio": float(store.drift_ratio()),
            }
        return report

    # ----------------------------------------------- scheduler-source protocol
    def snapshot(self):
        """The default tenant's live snapshot (single-tenant compatibility)."""
        return self.default.snapshot()

    # ------------------------------------------------------------------- close
    def close(self) -> None:
        """Shut down every registry-provisioned deployment's executor."""
        with self._lock:
            owned = [self._managers[name] for name in self._owned if name in self._managers]
            self._owned.clear()
        for manager in owned:
            manager.close()

    def __enter__(self) -> "TenantRegistry":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()
