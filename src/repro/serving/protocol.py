"""The wire protocol of the serving front-end.

A deployment's query path crosses a socket: capture boxes embed traces and
ship the embeddings to the serving fleet.  The framing is deliberately
boring — length-prefixed binary frames over TCP — because boring survives
fuzzing:

``magic(4) | type(1) | length(4, big-endian) | payload(length)``

* ``QUERY`` frames carry a packed float32 batch:
  ``n_queries | dim | top_n`` (three little-endian uint32) followed by
  ``n_queries * dim`` little-endian float32 values.  float32 on the wire
  halves bandwidth; the server widens to float64 before classifying, the
  same contract as ``ReferenceStore(storage_dtype="float32")``.  A
  multi-tenant query appends an optional *tenant block* after the float
  data — ``uint16 length | UTF-8 tenant name`` — which routes the batch
  to that tenant's deployment; frames without the block (byte-identical
  to the single-tenant wire format) go to the default tenant.
* ``CONTROL`` frames carry a JSON object (``{"op": "ping" | "stats" |
  "info" | "metrics" | "rebalance" | "requantize" | "add" | "remove" |
  "replace" | "tenant" | "tenants" | "replica", ...}``, plus an optional
  ``"tenant"`` key routing the op) and are answered with a ``CONTROL``
  frame.
* ``RESULT`` frames answer queries: JSON with the serving generation and
  one ``{"labels": [...], "scores": [...]}`` entry per query.
* ``ERROR`` frames are the *only* way the server reports a bad request or
  an internal failure — a structured JSON body, never a dropped
  connection mid-frame and never a traceback on the socket.

The byte-level specification — every field, cap, error code and an
example hexdump — lives in ``docs/wire-protocol.md``;
``tests/test_docs.py`` cross-checks that document against the constants
in this module.

Every decoder in this module validates before it allocates: declared
lengths are capped (``MAX_PAYLOAD``, ``MAX_BATCH``) so a hostile length
prefix cannot balloon memory, and malformed payloads raise
:class:`ProtocolError` with a stable machine-readable ``code`` the server
echoes into its error frame.  ``tests/test_frontend_protocol.py`` fuzzes
exactly this surface.
"""

from __future__ import annotations

import json
import re
import socket
import struct
from typing import Dict, List, Optional, Tuple

import numpy as np

MAGIC = b"RSF1"
HEADER = struct.Struct("!4sBI")  # magic, frame type, payload length
QUERY_HEADER = struct.Struct("<III")  # n_queries, dim, top_n
TENANT_HEADER = struct.Struct("<H")  # byte length of the UTF-8 tenant name

# Frame types.
QUERY = 1
RESULT = 2
CONTROL = 3
ERROR = 4

FRAME_TYPES = (QUERY, RESULT, CONTROL, ERROR)

MAX_PAYLOAD = 32 * 1024 * 1024  # one frame never exceeds 32 MiB
MAX_BATCH = 65_536  # queries per frame
MAX_DIM = 65_536
MAX_TENANT = 64  # bytes of UTF-8 tenant name

# Tenant names are deliberately boring: they ride the binary QUERY frame,
# key cache entries and name metric labels, so no whitespace, no slashes,
# no empty string.
TENANT_PATTERN = re.compile(r"^[A-Za-z0-9][A-Za-z0-9._-]{0,63}$")


def validate_tenant(tenant: str) -> str:
    """Validate a tenant name; raises ``ProtocolError('bad-tenant')``."""
    if not isinstance(tenant, str) or not TENANT_PATTERN.match(tenant):
        raise ProtocolError(
            "bad-tenant",
            f"tenant names must match {TENANT_PATTERN.pattern} (got {tenant!r})",
        )
    return tenant


class ProtocolError(ValueError):
    """A frame violated the wire contract.

    ``code`` is the machine-readable error class the server echoes back in
    its ``ERROR`` frame; ``recoverable`` says whether the byte stream is
    still in sync (a well-framed bad payload) or must be torn down (a bad
    magic/oversized length means we no longer know where frames start).
    ``details`` carries extra structured context the server folds into the
    error body — most importantly the ``op`` of a failed control request,
    so a client pipelining several ops can tell which one failed.
    """

    def __init__(
        self,
        code: str,
        message: str,
        *,
        recoverable: bool = True,
        details: Optional[Dict] = None,
    ) -> None:
        super().__init__(message)
        self.code = code
        self.recoverable = recoverable
        self.details = dict(details) if details else {}


# ------------------------------------------------------------------- framing
def encode_frame(frame_type: int, payload: bytes) -> bytes:
    """``magic | type | length | payload`` with the length cap enforced."""
    if frame_type not in FRAME_TYPES:
        raise ProtocolError("bad-frame-type", f"unknown frame type {frame_type}")
    if len(payload) > MAX_PAYLOAD:
        raise ProtocolError(
            "frame-too-large", f"payload of {len(payload)} bytes exceeds {MAX_PAYLOAD}"
        )
    return HEADER.pack(MAGIC, frame_type, len(payload)) + payload


def parse_header(header: bytes) -> Tuple[int, int]:
    """Validated ``(frame_type, payload_length)`` from a 9-byte header."""
    if len(header) != HEADER.size:
        raise ProtocolError(
            "truncated-frame", f"header is {len(header)} bytes, expected {HEADER.size}",
            recoverable=False,
        )
    magic, frame_type, length = HEADER.unpack(header)
    if magic != MAGIC:
        raise ProtocolError(
            "bad-magic", f"bad magic {magic!r}; the stream is not speaking this protocol",
            recoverable=False,
        )
    if length > MAX_PAYLOAD:
        # Checked before the frame type: a hostile length must be fatal
        # even on an unknown type, or the recoverable-error path would
        # drain (and buffer) an attacker-declared 4 GiB "payload".
        raise ProtocolError(
            "frame-too-large", f"declared payload of {length} bytes exceeds {MAX_PAYLOAD}",
            recoverable=False,
        )
    if frame_type not in FRAME_TYPES:
        # The framing itself is intact (length already validated), so the
        # stream stays usable.
        raise ProtocolError("bad-frame-type", f"unknown frame type {frame_type}")
    return frame_type, length


# -------------------------------------------------------------------- queries
def encode_query(batch: np.ndarray, top_n: int = 1, *, tenant: Optional[str] = None) -> bytes:
    """A ``QUERY`` frame for a ``(n, dim)`` embedding batch.

    With ``tenant`` set, a trailing tenant block routes the batch to that
    tenant's deployment; without it the frame is byte-identical to the
    single-tenant format and goes to the default tenant.
    """
    block = np.ascontiguousarray(np.atleast_2d(np.asarray(batch)), dtype="<f4")
    n, dim = block.shape
    if n == 0 or dim == 0:
        raise ProtocolError("bad-query", "query batches must be non-empty")
    if n > MAX_BATCH:
        raise ProtocolError("bad-query", f"batch of {n} queries exceeds {MAX_BATCH}")
    if top_n <= 0:
        raise ProtocolError("bad-query", "top_n must be positive")
    payload = QUERY_HEADER.pack(n, dim, top_n) + block.tobytes()
    if tenant is not None:
        encoded = validate_tenant(tenant).encode("utf-8")
        payload += TENANT_HEADER.pack(len(encoded)) + encoded
    return encode_frame(QUERY, payload)


def decode_query(payload: bytes) -> Tuple[np.ndarray, int, Optional[str]]:
    """``(batch float64 (n, dim), top_n, tenant)`` from a ``QUERY`` payload.

    ``tenant`` is ``None`` when the frame has no tenant block (the
    single-tenant wire format).
    """
    if len(payload) < QUERY_HEADER.size:
        raise ProtocolError(
            "bad-query", f"query payload of {len(payload)} bytes is shorter than its header"
        )
    n, dim, top_n = QUERY_HEADER.unpack_from(payload)
    if n == 0 or dim == 0 or top_n == 0:
        raise ProtocolError("bad-query", "n_queries, dim and top_n must all be positive")
    if n > MAX_BATCH or dim > MAX_DIM:
        raise ProtocolError(
            "bad-query", f"declared batch {n}x{dim} exceeds limits ({MAX_BATCH}x{MAX_DIM})"
        )
    expected = QUERY_HEADER.size + 4 * n * dim
    tenant: Optional[str] = None
    if len(payload) > expected:
        # Optional trailing tenant block: uint16 length + UTF-8 name.  The
        # remaining bytes must account for it exactly — anything else is
        # corruption, not a tenant.
        trailer = len(payload) - expected
        if trailer < TENANT_HEADER.size:
            raise ProtocolError(
                "bad-query",
                f"query payload has {trailer} trailing bytes; a tenant block needs at least {TENANT_HEADER.size}",
            )
        (tenant_len,) = TENANT_HEADER.unpack_from(payload, expected)
        if tenant_len > MAX_TENANT:
            raise ProtocolError(
                "bad-tenant", f"declared tenant name of {tenant_len} bytes exceeds {MAX_TENANT}"
            )
        if trailer != TENANT_HEADER.size + tenant_len:
            raise ProtocolError(
                "bad-query",
                f"tenant block declares {tenant_len} bytes but {trailer - TENANT_HEADER.size} follow",
            )
        try:
            tenant = payload[expected + TENANT_HEADER.size :].decode("utf-8")
        except UnicodeDecodeError as error:
            raise ProtocolError("bad-tenant", f"tenant name is not valid UTF-8: {error}") from error
        validate_tenant(tenant)
    elif len(payload) != expected:
        raise ProtocolError(
            "bad-query",
            f"query payload is {len(payload)} bytes but {n}x{dim} float32 needs {expected}",
        )
    block = np.frombuffer(payload, dtype="<f4", count=n * dim, offset=QUERY_HEADER.size)
    return block.reshape(n, dim).astype(np.float64), int(top_n), tenant


# ------------------------------------------------------------ JSON frame bodies
def encode_json(frame_type: int, body: Dict) -> bytes:
    """A frame whose payload is a UTF-8 JSON object."""
    return encode_frame(frame_type, json.dumps(body).encode("utf-8"))


def decode_json(payload: bytes, *, code: str = "bad-control") -> Dict:
    """Parse a JSON-object payload (raises ``ProtocolError(code)`` if not)."""
    try:
        body = json.loads(payload.decode("utf-8"))
    except (UnicodeDecodeError, json.JSONDecodeError) as error:
        raise ProtocolError(code, f"payload is not valid JSON: {error}") from error
    if not isinstance(body, dict):
        raise ProtocolError(code, f"expected a JSON object, got {type(body).__name__}")
    return body


def encode_result(generation: int, ranked: List[Tuple[List[str], List[float]]]) -> bytes:
    """A ``RESULT`` frame: per-query top-n labels and scores."""
    body = {
        "generation": int(generation),
        "predictions": [
            {"labels": list(labels), "scores": [float(score) for score in scores]}
            for labels, scores in ranked
        ],
    }
    return encode_json(RESULT, body)


def encode_error(
    code: str, message: str, *, recoverable: bool = True, details: Optional[Dict] = None
) -> bytes:
    """The structured ``ERROR`` frame the server answers bad input with.

    ``details`` merges extra context keys into the body (e.g. the ``op`` of
    a failed control request) without clobbering the three core fields.
    """
    body = {"error": code, "message": message, "recoverable": bool(recoverable)}
    if details:
        for key, value in details.items():
            body.setdefault(key, value)
    return encode_json(ERROR, body)


# -------------------------------------------------------------- blocking client
def _recv_exact(sock: socket.socket, n_bytes: int) -> bytes:
    chunks = []
    remaining = n_bytes
    while remaining:
        chunk = sock.recv(remaining)
        if not chunk:
            raise ProtocolError(
                "connection-closed", "the peer closed the connection mid-frame",
                recoverable=False,
            )
        chunks.append(chunk)
        remaining -= len(chunk)
    return b"".join(chunks)


def send_frame(sock: socket.socket, frame: bytes) -> None:
    """Write one already-encoded frame to a blocking socket."""
    sock.sendall(frame)


def recv_frame(sock: socket.socket) -> Tuple[int, bytes]:
    """Read one validated ``(frame_type, payload)`` from a blocking socket."""
    frame_type, length = parse_header(_recv_exact(sock, HEADER.size))
    payload = _recv_exact(sock, length) if length else b""
    return frame_type, payload


class FrontendClient:
    """Blocking client for the serving front-end (loadgen, tests, examples).

    One client is one connection; calls are synchronous request/response.
    Concurrency comes from running several clients (see
    :class:`~repro.serving.loadgen.NetworkLoadGenerator`), which is also how
    the replica router on the server side gets distinct streams to spread.
    """

    def __init__(self, host: str, port: int, *, timeout_s: float = 30.0) -> None:
        self._sock = socket.create_connection((host, port), timeout=timeout_s)
        self._sock.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)

    # -------------------------------------------------------------- lifecycle
    def close(self) -> None:
        """Close the connection (idempotent)."""
        try:
            self._sock.close()
        except OSError:
            pass

    def __enter__(self) -> "FrontendClient":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    # ---------------------------------------------------------------- queries
    def _request(self, frame: bytes, expected_type: int, *, code: str = "bad-control") -> Dict:
        """One round-trip; decodes the JSON reply, raising the server's
        structured error if an ``ERROR`` frame came back instead."""
        send_frame(self._sock, frame)
        frame_type, payload = recv_frame(self._sock)
        if frame_type == ERROR:
            body = decode_json(payload, code="bad-error-frame")
            raise ProtocolError(
                str(body.get("error", "server-error")),
                str(body.get("message", "")),
                recoverable=bool(body.get("recoverable", True)),
                details={
                    key: value
                    for key, value in body.items()
                    if key not in ("error", "message", "recoverable")
                },
            )
        if frame_type != expected_type:
            raise ProtocolError(
                "bad-frame-type", f"expected frame type {expected_type}, got {frame_type}"
            )
        return decode_json(payload, code=code)

    def classify(
        self, batch: np.ndarray, *, top_n: int = 1, tenant: Optional[str] = None
    ) -> Dict:
        """Classify a batch; returns the decoded ``RESULT`` body.

        ``tenant`` routes the batch to that tenant's deployment.  Raises
        :class:`ProtocolError` with the server's error code if the server
        answered with an ``ERROR`` frame.
        """
        return self._request(
            encode_query(batch, top_n, tenant=tenant), RESULT, code="bad-result"
        )

    def control(self, body: Dict, *, tenant: Optional[str] = None) -> Dict:
        """Send a control request; returns the server's JSON reply."""
        if tenant is not None:
            body = dict(body, tenant=validate_tenant(tenant))
        return self._request(encode_json(CONTROL, body), CONTROL)

    def ping(self) -> bool:
        """Liveness probe: ``True`` iff the server answered ``{"ok": true}``."""
        return self.control({"op": "ping"}).get("ok", False) is True

    def stats(self) -> Dict:
        """Front-end + scheduler counters (frames, errors, cache hits...)."""
        return self.control({"op": "stats"})

    def info(self, *, tenant: Optional[str] = None) -> Dict:
        """Deployment shape: references, classes, shards, drift, generation."""
        return self.control({"op": "info"}, tenant=tenant)

    def metrics(self) -> Dict:
        """Prometheus text exposition of the server's metrics registry.

        Returns ``{"content_type": ..., "exposition": ...}``; feed the
        exposition to :func:`repro.obs.parse_prometheus` or any
        Prometheus-compatible scraper.
        """
        return self.control({"op": "metrics"})

    def rebalance(
        self, *, threshold: Optional[float] = None, tenant: Optional[str] = None
    ) -> Dict:
        """Trigger a zero-downtime shard rebalance; returns the moves made."""
        body: Dict = {"op": "rebalance"}
        if threshold is not None:
            body["threshold"] = float(threshold)
        return self.control(body, tenant=tenant)

    def requantize(
        self, *, sample_size: Optional[int] = None, tenant: Optional[str] = None
    ) -> Dict:
        """Trigger a zero-downtime quantizer re-train on the deployment;
        returns the drift ratio before/after and the new generation."""
        body: Dict = {"op": "requantize"}
        if sample_size is not None:
            body["sample_size"] = int(sample_size)
        return self.control(body, tenant=tenant)

    # ------------------------------------------------------- class mutations
    @staticmethod
    def _embedding_payload(embeddings: np.ndarray) -> List[List[float]]:
        block = np.atleast_2d(np.asarray(embeddings, dtype=np.float64))
        if block.ndim != 2 or block.shape[0] == 0 or block.shape[1] == 0:
            raise ProtocolError("bad-control", "embeddings must be a non-empty (n, dim) array")
        return [[float(value) for value in row] for row in block]

    def add_class(
        self, label: str, embeddings: np.ndarray, *, tenant: Optional[str] = None
    ) -> Dict:
        """Add a monitored class to the live deployment (zero downtime)."""
        body = {"op": "add", "label": str(label), "embeddings": self._embedding_payload(embeddings)}
        return self.control(body, tenant=tenant)

    def remove_class(self, label: str, *, tenant: Optional[str] = None) -> Dict:
        """Remove a monitored class from the live deployment."""
        return self.control({"op": "remove", "label": str(label)}, tenant=tenant)

    def replace_class(
        self, label: str, embeddings: np.ndarray, *, tenant: Optional[str] = None
    ) -> Dict:
        """Replace a class's reference embeddings (page-update churn)."""
        body = {
            "op": "replace",
            "label": str(label),
            "embeddings": self._embedding_payload(embeddings),
        }
        return self.control(body, tenant=tenant)

    # ------------------------------------------------------------- tenant ops
    def create_tenant(self, tenant: str) -> Dict:
        """Provision an empty deployment for ``tenant`` behind this front-end."""
        return self.control({"op": "tenant", "action": "create", "name": validate_tenant(tenant)})

    def drop_tenant(self, tenant: str) -> Dict:
        """Tear down ``tenant``'s deployment (the default tenant cannot be dropped)."""
        return self.control({"op": "tenant", "action": "drop", "name": validate_tenant(tenant)})

    def tenants(self) -> Dict:
        """List tenants and their per-tenant generations/reference counts."""
        return self.control({"op": "tenants"})

    # ------------------------------------------------------------ replica ops
    def kill_replica(self, position: int, *, tenant: Optional[str] = None) -> Dict:
        """Drain one replica out of the router (in-flight searches finish)."""
        return self.control(
            {"op": "replica", "action": "kill", "position": int(position)}, tenant=tenant
        )

    def restore_replica(self, position: int, *, tenant: Optional[str] = None) -> Dict:
        """Bring a drained replica back into the router rotation."""
        return self.control(
            {"op": "replica", "action": "restore", "position": int(position)}, tenant=tenant
        )
