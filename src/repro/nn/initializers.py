"""Weight initializers for the NumPy neural-network framework."""

from __future__ import annotations

from typing import Tuple

import numpy as np


def glorot_uniform(shape: Tuple[int, ...], rng: np.random.Generator) -> np.ndarray:
    """Glorot/Xavier uniform initialization.

    Samples from ``U(-limit, limit)`` with ``limit = sqrt(6 / (fan_in +
    fan_out))``.  For two-dimensional weight matrices ``fan_in`` and
    ``fan_out`` are the two dimensions; for other shapes the product of the
    remaining dimensions is folded into the fans.
    """
    if len(shape) < 2:
        fan_in = fan_out = int(np.prod(shape))
    else:
        receptive = int(np.prod(shape[2:])) if len(shape) > 2 else 1
        fan_in = shape[0] * receptive
        fan_out = shape[1] * receptive
    limit = np.sqrt(6.0 / max(1, fan_in + fan_out))
    return rng.uniform(-limit, limit, size=shape).astype(np.float64)


def orthogonal(shape: Tuple[int, int], rng: np.random.Generator, gain: float = 1.0) -> np.ndarray:
    """Orthogonal initialization, commonly used for recurrent kernels."""
    if len(shape) != 2:
        raise ValueError(f"orthogonal initializer requires a 2-D shape, got {shape}")
    rows, cols = shape
    size = max(rows, cols)
    a = rng.standard_normal((size, size))
    q, r = np.linalg.qr(a)
    # Make the decomposition unique so that the distribution is uniform over
    # the orthogonal group.
    q = q * np.sign(np.diag(r))
    return (gain * q[:rows, :cols]).astype(np.float64)


def zeros_init(shape: Tuple[int, ...], rng: np.random.Generator | None = None) -> np.ndarray:
    """All-zeros initializer (used for biases)."""
    return np.zeros(shape, dtype=np.float64)
