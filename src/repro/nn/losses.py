"""Loss functions.

:class:`ContrastiveLoss` implements equation (1) of the paper
(Hadsell/Chopra contrastive loss over the Euclidean distance between two
embeddings), together with the gradients with respect to both embeddings so
a siamese pair can be trained with a single shared network.
"""

from __future__ import annotations

from typing import Tuple

import numpy as np

_EPSILON = 1e-12


def euclidean_distance(a: np.ndarray, b: np.ndarray) -> np.ndarray:
    """Row-wise Euclidean distance between two batches of embeddings."""
    if a.shape != b.shape:
        raise ValueError(f"embedding shapes differ: {a.shape} vs {b.shape}")
    return np.sqrt(np.sum((a - b) ** 2, axis=1) + _EPSILON)


class ContrastiveLoss:
    """Contrastive loss  L(d, y) = y d^2 + (1 - y) max(margin - d, 0)^2.

    ``y = 1`` marks a positive pair (same webpage) and ``y = 0`` a negative
    pair, matching the pair-labelling convention of Section IV-A.2.
    """

    def __init__(self, margin: float = 10.0) -> None:
        if margin <= 0:
            raise ValueError("contrastive margin must be positive")
        self.margin = float(margin)

    def forward(self, emb_a: np.ndarray, emb_b: np.ndarray, labels: np.ndarray) -> float:
        """Mean loss over the batch."""
        labels = np.asarray(labels, dtype=np.float64)
        d = euclidean_distance(emb_a, emb_b)
        positive_term = labels * d**2
        negative_term = (1.0 - labels) * np.maximum(self.margin - d, 0.0) ** 2
        return float(np.mean(positive_term + negative_term))

    def backward(
        self, emb_a: np.ndarray, emb_b: np.ndarray, labels: np.ndarray
    ) -> Tuple[np.ndarray, np.ndarray]:
        """Gradients of the mean loss w.r.t. both embedding batches."""
        labels = np.asarray(labels, dtype=np.float64)
        batch = emb_a.shape[0]
        diff = emb_a - emb_b
        d = euclidean_distance(emb_a, emb_b)

        # d(L)/d(d):  2 y d  -  2 (1 - y) max(margin - d, 0)
        hinge = np.maximum(self.margin - d, 0.0)
        dl_dd = 2.0 * labels * d - 2.0 * (1.0 - labels) * hinge
        # d(d)/d(emb_a) = diff / d ;  guard the division for identical rows.
        scale = (dl_dd / np.maximum(d, _EPSILON))[:, None] / batch
        grad_a = scale * diff
        grad_b = -grad_a
        return grad_a, grad_b

    def __call__(self, emb_a: np.ndarray, emb_b: np.ndarray, labels: np.ndarray) -> float:
        return self.forward(emb_a, emb_b, labels)


class BinaryCrossEntropy:
    """Binary cross-entropy over probabilities in (0, 1)."""

    def forward(self, probs: np.ndarray, labels: np.ndarray) -> float:
        probs = np.clip(probs, _EPSILON, 1.0 - _EPSILON)
        labels = np.asarray(labels, dtype=np.float64)
        loss = -(labels * np.log(probs) + (1.0 - labels) * np.log(1.0 - probs))
        return float(np.mean(loss))

    def backward(self, probs: np.ndarray, labels: np.ndarray) -> np.ndarray:
        probs = np.clip(probs, _EPSILON, 1.0 - _EPSILON)
        labels = np.asarray(labels, dtype=np.float64)
        return (probs - labels) / (probs * (1.0 - probs)) / probs.shape[0]


class SoftmaxCrossEntropy:
    """Combined softmax + cross-entropy over integer class labels.

    Used by the Deep-Fingerprinting-style baseline classifier whose output
    layer is a per-class softmax (unlike the paper's embedding model).
    """

    def forward(self, logits: np.ndarray, labels: np.ndarray) -> float:
        probs = self.softmax(logits)
        batch = logits.shape[0]
        picked = probs[np.arange(batch), labels]
        return float(-np.mean(np.log(np.clip(picked, _EPSILON, None))))

    def backward(self, logits: np.ndarray, labels: np.ndarray) -> np.ndarray:
        probs = self.softmax(logits)
        batch = logits.shape[0]
        grad = probs.copy()
        grad[np.arange(batch), labels] -= 1.0
        return grad / batch

    @staticmethod
    def softmax(logits: np.ndarray) -> np.ndarray:
        shifted = logits - logits.max(axis=1, keepdims=True)
        exp = np.exp(shifted)
        return exp / exp.sum(axis=1, keepdims=True)
