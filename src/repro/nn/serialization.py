"""Saving and loading network weights.

The paper ships trained models alongside its datasets; these helpers give
the reproduction the same capability using ``numpy.savez`` archives keyed by
the stable parameter names exposed by :class:`repro.nn.network.Sequential`.
"""

from __future__ import annotations

import os
from pathlib import Path
from typing import Union

import numpy as np

from repro.nn.network import Sequential

PathLike = Union[str, os.PathLike]


def save_weights(network: Sequential, path: PathLike) -> Path:
    """Serialize all parameters of ``network`` to an ``.npz`` archive.

    Returns the path actually written (``.npz`` suffix is enforced so that
    callers can rely on the extension ``numpy.savez`` would append anyway).
    """
    path = Path(path)
    if path.suffix != ".npz":
        path = path.with_suffix(".npz")
    path.parent.mkdir(parents=True, exist_ok=True)
    np.savez(path, **network.state_dict())
    return path


def load_weights(network: Sequential, path: PathLike) -> Sequential:
    """Load parameters saved with :func:`save_weights` into ``network``.

    The network must already have been constructed with the same
    architecture; mismatching names or shapes raise ``ValueError``.
    """
    path = Path(path)
    if not path.exists():
        raise FileNotFoundError(f"weight archive not found: {path}")
    with np.load(path) as archive:
        state = {name: archive[name] for name in archive.files}
    network.load_state_dict(state)
    return network
