"""Sequential container composing layers into a network."""

from __future__ import annotations

from typing import Dict, Iterator, List, Sequence, Tuple

import numpy as np

from repro.nn.layers import Layer


class Sequential:
    """A plain feed-forward composition of layers.

    The container is deliberately simple: layers are applied in order on
    ``forward`` and in reverse order on ``backward``.  It also provides the
    parameter iteration the optimizers and the serialization helpers need.
    """

    def __init__(self, layers: Sequence[Layer]) -> None:
        if not layers:
            raise ValueError("Sequential requires at least one layer")
        self.layers: List[Layer] = list(layers)

    def forward(self, x: np.ndarray, training: bool = False) -> np.ndarray:
        out = x
        for layer in self.layers:
            out = layer.forward(out, training=training)
        return out

    def backward(self, grad: np.ndarray) -> np.ndarray:
        out = grad
        for layer in reversed(self.layers):
            out = layer.backward(out)
        return out

    def __call__(self, x: np.ndarray, training: bool = False) -> np.ndarray:
        return self.forward(x, training=training)

    def zero_grad(self) -> None:
        for layer in self.layers:
            layer.zero_grad()

    def named_parameters(self) -> Iterator[Tuple[str, np.ndarray]]:
        """Yield ``(name, array)`` pairs with stable, unique names."""
        for index, layer in enumerate(self.layers):
            for key, value in layer.params.items():
                yield f"layer{index}.{type(layer).__name__}.{key}", value

    def named_gradients(self) -> Iterator[Tuple[str, np.ndarray]]:
        """Yield ``(name, grad)`` pairs aligned with :meth:`named_parameters`."""
        for index, layer in enumerate(self.layers):
            for key, value in layer.grads.items():
                yield f"layer{index}.{type(layer).__name__}.{key}", value

    def state_dict(self) -> Dict[str, np.ndarray]:
        """Copy of all trainable parameters keyed by their stable names."""
        return {name: value.copy() for name, value in self.named_parameters()}

    def load_state_dict(self, state: Dict[str, np.ndarray]) -> None:
        """Load parameters previously produced by :meth:`state_dict`."""
        own = dict(self.named_parameters())
        missing = set(own) - set(state)
        unexpected = set(state) - set(own)
        if missing or unexpected:
            raise ValueError(
                f"state dict mismatch: missing={sorted(missing)} unexpected={sorted(unexpected)}"
            )
        for name, value in state.items():
            target = own[name]
            if target.shape != value.shape:
                raise ValueError(
                    f"shape mismatch for {name}: expected {target.shape}, got {value.shape}"
                )
            target[...] = value

    @property
    def n_params(self) -> int:
        """Total number of trainable scalars across all layers."""
        return sum(layer.n_params for layer in self.layers)
