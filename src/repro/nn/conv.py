"""1-D convolution and pooling layers.

These layers let the reproduction implement the Deep-Fingerprinting-style
convolutional baseline (Sirinam et al.) natively instead of approximating
it with a dense network.  Input shape follows the rest of the framework's
sequence convention: ``(batch, time, channels)``.
"""

from __future__ import annotations

from typing import Optional, Tuple

import numpy as np

from repro.nn.initializers import glorot_uniform, zeros_init
from repro.nn.layers import Layer


class Conv1D(Layer):
    """1-D convolution with 'valid' padding and stride 1.

    The kernel has shape ``(kernel_size, in_channels, out_channels)``.  The
    implementation builds a strided view of the input windows so both the
    forward and backward passes are single ``tensordot`` calls.
    """

    def __init__(
        self,
        in_channels: int,
        out_channels: int,
        kernel_size: int,
        *,
        rng: Optional[np.random.Generator] = None,
    ) -> None:
        super().__init__()
        if min(in_channels, out_channels, kernel_size) <= 0:
            raise ValueError("Conv1D dimensions must be positive")
        rng = rng if rng is not None else np.random.default_rng(0)
        self.in_channels = int(in_channels)
        self.out_channels = int(out_channels)
        self.kernel_size = int(kernel_size)
        self.params = {
            "W": glorot_uniform((kernel_size * in_channels, out_channels), rng).reshape(
                kernel_size, in_channels, out_channels
            ),
            "b": zeros_init((out_channels,)),
        }
        self.grads = {key: np.zeros_like(value) for key, value in self.params.items()}
        self._windows: Optional[np.ndarray] = None
        self._input_shape: Optional[Tuple[int, int, int]] = None

    def _window_view(self, x: np.ndarray) -> np.ndarray:
        batch, time, channels = x.shape
        out_time = time - self.kernel_size + 1
        shape = (batch, out_time, self.kernel_size, channels)
        strides = (x.strides[0], x.strides[1], x.strides[1], x.strides[2])
        return np.lib.stride_tricks.as_strided(x, shape=shape, strides=strides)

    def forward(self, x: np.ndarray, training: bool = False) -> np.ndarray:
        if x.ndim != 3:
            raise ValueError(f"Conv1D expects (batch, time, channels), got {x.shape}")
        if x.shape[2] != self.in_channels:
            raise ValueError(f"Conv1D expected {self.in_channels} channels, got {x.shape[2]}")
        if x.shape[1] < self.kernel_size:
            raise ValueError(
                f"input length {x.shape[1]} is shorter than the kernel size {self.kernel_size}"
            )
        x = np.ascontiguousarray(x, dtype=np.float64)
        windows = self._window_view(x)
        self._windows = windows
        self._input_shape = x.shape
        # (batch, out_time, k, c) x (k, c, f) -> (batch, out_time, f)
        return np.tensordot(windows, self.params["W"], axes=([2, 3], [0, 1])) + self.params["b"]

    def backward(self, grad: np.ndarray) -> np.ndarray:
        if self._windows is None or self._input_shape is None:
            raise RuntimeError("backward called before forward")
        windows = self._windows
        batch, time, channels = self._input_shape
        out_time = grad.shape[1]
        # dW: sum over batch and output positions.
        self.grads["W"] += np.tensordot(windows, grad, axes=([0, 1], [0, 1]))
        self.grads["b"] += grad.sum(axis=(0, 1))
        # dX: scatter the kernel back over the input windows.
        grad_x = np.zeros(self._input_shape, dtype=np.float64)
        contribution = np.tensordot(grad, self.params["W"], axes=([2], [2]))  # (b, out_t, k, c)
        for offset in range(self.kernel_size):
            grad_x[:, offset : offset + out_time, :] += contribution[:, :, offset, :]
        return grad_x


class MaxPool1D(Layer):
    """Non-overlapping 1-D max pooling over the time dimension."""

    def __init__(self, pool_size: int = 2) -> None:
        super().__init__()
        if pool_size <= 0:
            raise ValueError("pool_size must be positive")
        self.pool_size = int(pool_size)
        self._mask: Optional[np.ndarray] = None
        self._input_shape: Optional[Tuple[int, int, int]] = None

    def forward(self, x: np.ndarray, training: bool = False) -> np.ndarray:
        if x.ndim != 3:
            raise ValueError(f"MaxPool1D expects (batch, time, channels), got {x.shape}")
        batch, time, channels = x.shape
        usable = (time // self.pool_size) * self.pool_size
        if usable == 0:
            raise ValueError(f"input length {time} is shorter than the pool size {self.pool_size}")
        trimmed = x[:, :usable, :].reshape(batch, usable // self.pool_size, self.pool_size, channels)
        out = trimmed.max(axis=2)
        self._mask = trimmed == out[:, :, None, :]
        self._input_shape = x.shape
        return out

    def backward(self, grad: np.ndarray) -> np.ndarray:
        if self._mask is None or self._input_shape is None:
            raise RuntimeError("backward called before forward")
        batch, time, channels = self._input_shape
        usable = self._mask.shape[1] * self.pool_size
        # Spread the gradient to every position that attained the max (ties
        # share the gradient, matching the subgradient convention).
        counts = self._mask.sum(axis=2, keepdims=True)
        expanded = self._mask * (grad[:, :, None, :] / counts)
        grad_x = np.zeros(self._input_shape, dtype=np.float64)
        grad_x[:, :usable, :] = expanded.reshape(batch, usable, channels)
        return grad_x


class Flatten(Layer):
    """Flatten ``(batch, time, channels)`` into ``(batch, time * channels)``."""

    def __init__(self) -> None:
        super().__init__()
        self._input_shape: Optional[Tuple[int, ...]] = None

    def forward(self, x: np.ndarray, training: bool = False) -> np.ndarray:
        self._input_shape = x.shape
        return x.reshape(x.shape[0], -1)

    def backward(self, grad: np.ndarray) -> np.ndarray:
        if self._input_shape is None:
            raise RuntimeError("backward called before forward")
        return grad.reshape(self._input_shape)
