"""A small from-scratch NumPy neural-network framework.

The paper trains its embedding model with Keras/TensorFlow (Table I); this
environment has neither, so the framework below provides the pieces the
paper's architecture needs: dense layers, an LSTM input layer, ReLU /
LeakyReLU activations, dropout, SGD and Adam optimizers, the contrastive
loss of Hadsell et al., and weight (de)serialization.

The public surface is intentionally small and mirrors familiar deep-learning
APIs so that the embedding model in :mod:`repro.core.embedding` reads like
the paper's description.
"""

from repro.nn.initializers import glorot_uniform, orthogonal, zeros_init
from repro.nn.layers import Dense, ReLU, LeakyReLU, Dropout, Layer
from repro.nn.lstm import LSTM
from repro.nn.conv import Conv1D, MaxPool1D, Flatten
from repro.nn.network import Sequential
from repro.nn.losses import (
    ContrastiveLoss,
    BinaryCrossEntropy,
    SoftmaxCrossEntropy,
    euclidean_distance,
)
from repro.nn.optimizers import SGD, Adam, Optimizer
from repro.nn.serialization import save_weights, load_weights

__all__ = [
    "glorot_uniform",
    "orthogonal",
    "zeros_init",
    "Layer",
    "Dense",
    "ReLU",
    "LeakyReLU",
    "Dropout",
    "LSTM",
    "Conv1D",
    "MaxPool1D",
    "Flatten",
    "Sequential",
    "ContrastiveLoss",
    "BinaryCrossEntropy",
    "SoftmaxCrossEntropy",
    "euclidean_distance",
    "SGD",
    "Adam",
    "Optimizer",
    "save_weights",
    "load_weights",
]
