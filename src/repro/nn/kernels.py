"""Optional fused C kernels for the LSTM cell's elementwise hot loops.

The per-timestep LSTM cell update and its backward pass are ~30 small
elementwise NumPy calls per step; at (batch, units) = (512, 30) each call
is dominated by dispatch overhead, not arithmetic.  This module fuses each
phase into a single C function (pure arithmetic, no transcendentals — the
``tanh`` calls stay in NumPy's SIMD loops) compiled on first use with the
system C compiler and loaded through :mod:`ctypes`.

No new dependency is introduced: when no compiler is available, or the
build fails for any reason, ``lstm_kernels()`` returns ``None`` and the
LSTM layer falls back to the equivalent NumPy implementation.  The kernels
are numerically the same computation (IEEE semantics, no -ffast-math);
only the operation fusion differs.

The shared object is cached outside the source tree (see
:mod:`repro.kernel_cache`), keyed by a hash of the C source and the host
CPU, so each machine compiles at most once per kernel version and build
artifacts never land in the git-tracked tree.
"""

from __future__ import annotations

import ctypes
import hashlib
import os
import subprocess
import tempfile
from pathlib import Path
from typing import Optional

import numpy as np

from repro.kernel_cache import kernel_cache_dir

_C_SOURCE = r"""
/* Fused elementwise kernels for the tanh-domain LSTM cell.

   Layout: gates is (n, 4*u) row-major with gate order [i, f, g, o], all in
   tanh domain (sigmoid(z) = 0.5 * (t + 1) with t = tanh(0.5 z)); every
   other array is (n, u) row-major and contiguous.
*/

void lstm_cell_c(long n, long u, const double *gates, const double *c_prev,
                 double *c_out)
{
    for (long row = 0; row < n; ++row) {
        const double *g4 = gates + row * 4 * u;
        const double *ti = g4;
        const double *tf = g4 + u;
        const double *tg = g4 + 2 * u;
        const double *cp = c_prev + row * u;
        double *c = c_out + row * u;
        for (long j = 0; j < u; ++j) {
            /* c = f*c_prev + i*g with f = (tf+1)/2, i = (ti+1)/2 */
            c[j] = 0.5 * ((tf[j] + 1.0) * cp[j] + (ti[j] + 1.0) * tg[j]);
        }
    }
}

void lstm_cell_h(long n, long u, long h_stride, const double *gates,
                 const double *tanh_c, double *h_out)
{
    /* h_stride: row stride (in elements) of h_out, so h can be written
       straight into a column block of the fused [x | h | 1] GEMM slab. */
    for (long row = 0; row < n; ++row) {
        const double *to = gates + row * 4 * u + 3 * u;
        const double *tc = tanh_c + row * u;
        double *h = h_out + row * h_stride;
        for (long j = 0; j < u; ++j) {
            /* h = o * tanh(c) with o = (to+1)/2 */
            h[j] = 0.5 * (to[j] + 1.0) * tc[j];
        }
    }
}

void lstm_cell_backward(long n, long u, const double *gates,
                        const double *tanh_c, const double *c_prev,
                        const double *dh, const double *dc_next_in,
                        double *dz_out, double *dc_next_out)
{
    for (long row = 0; row < n; ++row) {
        const double *g4 = gates + row * 4 * u;
        const double *ti = g4;
        const double *tf = g4 + u;
        const double *tg = g4 + 2 * u;
        const double *to = g4 + 3 * u;
        const double *tc = tanh_c + row * u;
        const double *cp = c_prev + row * u;
        const double *dhr = dh + row * u;
        const double *dcn_in = dc_next_in + row * u;
        double *dz = dz_out + row * 4 * u;
        double *dcn_out = dc_next_out + row * u;
        for (long j = 0; j < u; ++j) {
            /* sigmoid' = 0.25 (1 - t^2) in tanh domain, tanh' = 1 - t^2 */
            double tc2 = 1.0 - tc[j] * tc[j];
            double dc = dhr[j] * 0.5 * (to[j] + 1.0) * tc2 + dcn_in[j];
            dz[j]         = dc * tg[j] * 0.25 * (1.0 - ti[j] * ti[j]);
            dz[u + j]     = dc * cp[j] * 0.25 * (1.0 - tf[j] * tf[j]);
            dz[2 * u + j] = dc * 0.5 * (ti[j] + 1.0) * (1.0 - tg[j] * tg[j]);
            dz[3 * u + j] = dhr[j] * tc[j] * 0.25 * (1.0 - to[j] * to[j]);
            dcn_out[j] = dc * 0.5 * (tf[j] + 1.0);
        }
    }
}
"""

_CFLAGS = ["-O3", "-march=native", "-shared", "-fPIC"]
_cached: Optional[object] = None
_build_attempted = False


def _host_fingerprint() -> str:
    """Identify the CPU the kernel is compiled for.

    ``-march=native`` code is only valid on CPUs with the same ISA
    extensions, so the cache key must change when the tree moves to a
    different machine (otherwise loading the stale .so would SIGILL).
    """
    try:
        with open("/proc/cpuinfo") as cpuinfo:
            for line in cpuinfo:
                if line.startswith("flags"):
                    return line
    except OSError:
        pass
    import platform

    return f"{platform.machine()}-{platform.processor()}"


def _build_library() -> Optional[ctypes.CDLL]:
    key = hashlib.sha256((_C_SOURCE + "\0" + _host_fingerprint()).encode()).hexdigest()[:16]
    cache_dir = kernel_cache_dir()
    lib_path = cache_dir / f"_lstm_kernel_{key}.so"
    if not lib_path.exists():
        compiler = os.environ.get("CC", "cc")
        with tempfile.TemporaryDirectory() as tmp:
            c_file = Path(tmp) / "lstm_kernel.c"
            c_file.write_text(_C_SOURCE)
            # Compile straight into the cache directory (a cross-device
            # rename out of the temp dir would fail), then rename
            # atomically so concurrent builders cannot race.
            tmp_so = cache_dir / f".build-{os.getpid()}-{key}.so"
            result = subprocess.run(
                [compiler, *_CFLAGS, "-o", str(tmp_so), str(c_file)],
                capture_output=True,
                timeout=120,
            )
            if result.returncode != 0:
                return None
            os.replace(tmp_so, lib_path)
    library = ctypes.CDLL(str(lib_path))
    c_long = ctypes.c_long
    c_dptr = ctypes.POINTER(ctypes.c_double)
    library.lstm_cell_c.argtypes = [c_long, c_long, c_dptr, c_dptr, c_dptr]
    library.lstm_cell_h.argtypes = [c_long, c_long, c_long, c_dptr, c_dptr, c_dptr]
    library.lstm_cell_backward.argtypes = [c_long, c_long] + [c_dptr] * 7
    for name in ("lstm_cell_c", "lstm_cell_h", "lstm_cell_backward"):
        getattr(library, name).restype = None
    return library


class LSTMKernels:
    """ctypes wrappers around the fused cell kernels."""

    def __init__(self, library: ctypes.CDLL) -> None:
        self._lib = library
        self._as_ptr = ctypes.POINTER(ctypes.c_double)

    def _ptr(self, array: np.ndarray):
        return array.ctypes.data_as(self._as_ptr)

    def cell_c(self, gates: np.ndarray, c_prev: np.ndarray, c_out: np.ndarray) -> None:
        n, u = c_out.shape
        self._lib.lstm_cell_c(n, u, self._ptr(gates), self._ptr(c_prev), self._ptr(c_out))

    def cell_h(self, gates: np.ndarray, tanh_c: np.ndarray, h_out: np.ndarray) -> None:
        n, u = h_out.shape
        h_stride = h_out.strides[0] // h_out.itemsize
        self._lib.lstm_cell_h(n, u, h_stride, self._ptr(gates), self._ptr(tanh_c), self._ptr(h_out))

    def cell_backward(
        self,
        gates: np.ndarray,
        tanh_c: np.ndarray,
        c_prev: np.ndarray,
        dh: np.ndarray,
        dc_next_in: np.ndarray,
        dz_out: np.ndarray,
        dc_next_out: np.ndarray,
    ) -> None:
        n, u = dh.shape
        self._lib.lstm_cell_backward(
            n,
            u,
            self._ptr(gates),
            self._ptr(tanh_c),
            self._ptr(c_prev),
            self._ptr(dh),
            self._ptr(dc_next_in),
            self._ptr(dz_out),
            self._ptr(dc_next_out),
        )


def lstm_kernels() -> Optional[LSTMKernels]:
    """The compiled kernels, or ``None`` when unavailable (NumPy fallback)."""
    global _cached, _build_attempted
    if _build_attempted:
        return _cached
    _build_attempted = True
    if os.environ.get("REPRO_DISABLE_KERNELS"):
        return None
    try:
        library = _build_library()
    except Exception:
        library = None
    _cached = LSTMKernels(library) if library is not None else None
    return _cached
