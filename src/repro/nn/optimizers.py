"""Gradient-descent optimizers.

The paper trains with plain stochastic gradient descent (Table I); Adam is
provided for the baseline classifiers and for users who want faster
convergence at small scale.
"""

from __future__ import annotations

from typing import Dict, Optional

import numpy as np

from repro.nn.network import Sequential


class Optimizer:
    """Base optimizer operating on a :class:`Sequential` network."""

    def __init__(self, network: Sequential, learning_rate: float, gradient_clip: float = 0.0) -> None:
        if learning_rate <= 0:
            raise ValueError("learning rate must be positive")
        if gradient_clip < 0:
            raise ValueError("gradient clip must be non-negative")
        self.network = network
        self.learning_rate = float(learning_rate)
        self.gradient_clip = float(gradient_clip)

    def step(self) -> None:
        raise NotImplementedError

    def zero_grad(self) -> None:
        self.network.zero_grad()

    def _clipped_gradients(self) -> Dict[str, np.ndarray]:
        """Return gradients, globally clipped by L2 norm if configured."""
        grads = dict(self.network.named_gradients())
        if self.gradient_clip <= 0:
            return grads
        total_norm = np.sqrt(sum(float(np.sum(g**2)) for g in grads.values()))
        if total_norm <= self.gradient_clip or total_norm == 0.0:
            return grads
        scale = self.gradient_clip / total_norm
        return {name: g * scale for name, g in grads.items()}


class SGD(Optimizer):
    """Stochastic gradient descent with optional classical momentum."""

    def __init__(
        self,
        network: Sequential,
        learning_rate: float = 0.001,
        momentum: float = 0.0,
        gradient_clip: float = 0.0,
    ) -> None:
        super().__init__(network, learning_rate, gradient_clip)
        if not 0.0 <= momentum < 1.0:
            raise ValueError("momentum must be in [0, 1)")
        self.momentum = float(momentum)
        self._velocity: Optional[Dict[str, np.ndarray]] = None

    def step(self) -> None:
        params = dict(self.network.named_parameters())
        grads = self._clipped_gradients()
        if self.momentum > 0.0 and self._velocity is None:
            self._velocity = {name: np.zeros_like(value) for name, value in params.items()}
        for name, param in params.items():
            grad = grads[name]
            if self.momentum > 0.0:
                velocity = self._velocity[name]
                velocity *= self.momentum
                velocity -= self.learning_rate * grad
                param += velocity
            else:
                param -= self.learning_rate * grad


class Adam(Optimizer):
    """Adam optimizer (Kingma & Ba)."""

    def __init__(
        self,
        network: Sequential,
        learning_rate: float = 0.001,
        beta1: float = 0.9,
        beta2: float = 0.999,
        epsilon: float = 1e-8,
        gradient_clip: float = 0.0,
    ) -> None:
        super().__init__(network, learning_rate, gradient_clip)
        self.beta1 = float(beta1)
        self.beta2 = float(beta2)
        self.epsilon = float(epsilon)
        self._m: Optional[Dict[str, np.ndarray]] = None
        self._v: Optional[Dict[str, np.ndarray]] = None
        self._t = 0

    def step(self) -> None:
        params = dict(self.network.named_parameters())
        grads = self._clipped_gradients()
        if self._m is None:
            self._m = {name: np.zeros_like(value) for name, value in params.items()}
            self._v = {name: np.zeros_like(value) for name, value in params.items()}
        self._t += 1
        bias1 = 1.0 - self.beta1**self._t
        bias2 = 1.0 - self.beta2**self._t
        for name, param in params.items():
            grad = grads[name]
            m = self._m[name]
            v = self._v[name]
            m *= self.beta1
            m += (1.0 - self.beta1) * grad
            v *= self.beta2
            v += (1.0 - self.beta2) * grad**2
            m_hat = m / bias1
            v_hat = v / bias2
            param -= self.learning_rate * m_hat / (np.sqrt(v_hat) + self.epsilon)
