"""Feed-forward layers: Dense, activations and Dropout.

Every layer exposes the same minimal interface::

    y = layer.forward(x, training=True)
    grad_x = layer.backward(grad_y)
    layer.params       # dict of trainable arrays (may be empty)
    layer.grads        # dict of gradient arrays matching ``params``

Gradients are accumulated into ``grads`` on every ``backward`` call and the
optimizer is responsible for applying and clearing them.
"""

from __future__ import annotations

from typing import Dict, Optional

import numpy as np

from repro.nn.initializers import glorot_uniform, zeros_init


class Layer:
    """Base class for all layers."""

    def __init__(self) -> None:
        self.params: Dict[str, np.ndarray] = {}
        self.grads: Dict[str, np.ndarray] = {}

    def forward(self, x: np.ndarray, training: bool = False) -> np.ndarray:
        raise NotImplementedError

    def backward(self, grad: np.ndarray) -> np.ndarray:
        raise NotImplementedError

    def zero_grad(self) -> None:
        """Reset accumulated gradients to zero."""
        for key in self.grads:
            self.grads[key].fill(0.0)

    @property
    def n_params(self) -> int:
        """Total number of trainable scalars in this layer."""
        return int(sum(p.size for p in self.params.values()))


class Dense(Layer):
    """Fully-connected layer: ``y = x @ W + b``."""

    def __init__(self, in_features: int, out_features: int, *, rng: Optional[np.random.Generator] = None) -> None:
        super().__init__()
        if in_features <= 0 or out_features <= 0:
            raise ValueError("Dense layer dimensions must be positive")
        rng = rng if rng is not None else np.random.default_rng(0)
        self.in_features = in_features
        self.out_features = out_features
        self.params = {
            "W": glorot_uniform((in_features, out_features), rng),
            "b": zeros_init((out_features,)),
        }
        self.grads = {key: np.zeros_like(value) for key, value in self.params.items()}
        self._x: Optional[np.ndarray] = None

    def forward(self, x: np.ndarray, training: bool = False) -> np.ndarray:
        if x.ndim != 2:
            raise ValueError(f"Dense expects a 2-D input (batch, features), got shape {x.shape}")
        if x.shape[1] != self.in_features:
            raise ValueError(
                f"Dense expected {self.in_features} input features, got {x.shape[1]}"
            )
        self._x = x
        return x @ self.params["W"] + self.params["b"]

    def backward(self, grad: np.ndarray) -> np.ndarray:
        if self._x is None:
            raise RuntimeError("backward called before forward")
        self.grads["W"] += self._x.T @ grad
        self.grads["b"] += grad.sum(axis=0)
        return grad @ self.params["W"].T


class ReLU(Layer):
    """Rectified linear unit activation."""

    def __init__(self) -> None:
        super().__init__()
        self._mask: Optional[np.ndarray] = None

    def forward(self, x: np.ndarray, training: bool = False) -> np.ndarray:
        self._mask = x > 0
        return np.where(self._mask, x, 0.0)

    def backward(self, grad: np.ndarray) -> np.ndarray:
        if self._mask is None:
            raise RuntimeError("backward called before forward")
        return grad * self._mask


class LeakyReLU(Layer):
    """Leaky rectified linear unit with configurable negative slope."""

    def __init__(self, alpha: float = 0.01) -> None:
        super().__init__()
        if alpha < 0:
            raise ValueError("LeakyReLU alpha must be non-negative")
        self.alpha = float(alpha)
        self._x: Optional[np.ndarray] = None

    def forward(self, x: np.ndarray, training: bool = False) -> np.ndarray:
        self._x = x
        return np.where(x > 0, x, self.alpha * x)

    def backward(self, grad: np.ndarray) -> np.ndarray:
        if self._x is None:
            raise RuntimeError("backward called before forward")
        return grad * np.where(self._x > 0, 1.0, self.alpha)


class Dropout(Layer):
    """Inverted dropout: active only when ``training=True``."""

    def __init__(self, rate: float, *, rng: Optional[np.random.Generator] = None) -> None:
        super().__init__()
        if not 0.0 <= rate < 1.0:
            raise ValueError("Dropout rate must be in [0, 1)")
        self.rate = float(rate)
        self._rng = rng if rng is not None else np.random.default_rng(0)
        self._mask: Optional[np.ndarray] = None

    def forward(self, x: np.ndarray, training: bool = False) -> np.ndarray:
        if not training or self.rate == 0.0:
            self._mask = None
            return x
        keep = 1.0 - self.rate
        self._mask = (self._rng.random(x.shape) < keep) / keep
        return x * self._mask

    def backward(self, grad: np.ndarray) -> np.ndarray:
        if self._mask is None:
            return grad
        return grad * self._mask
