"""A single-layer LSTM with full backpropagation through time.

The paper's embedding network (Table I) uses an LSTM input layer of 30
units that consumes the per-IP byte-count sequences and emits its final
hidden state to a stack of fully-connected layers.  This module implements
that layer in NumPy, vectorised over the batch dimension.

Input shape:  ``(batch, time, features)``
Output shape: ``(batch, units)`` (the hidden state at the last timestep).
"""

from __future__ import annotations

from typing import Dict, List, Optional

import numpy as np

from repro.nn.initializers import glorot_uniform, orthogonal, zeros_init
from repro.nn.layers import Layer


def _sigmoid(x: np.ndarray) -> np.ndarray:
    # Numerically stable sigmoid.
    out = np.empty_like(x)
    positive = x >= 0
    out[positive] = 1.0 / (1.0 + np.exp(-x[positive]))
    exp_x = np.exp(x[~positive])
    out[~positive] = exp_x / (1.0 + exp_x)
    return out


class LSTM(Layer):
    """Long short-term memory layer returning the last hidden state.

    The gate kernels are packed into a single input kernel ``W`` of shape
    ``(features, 4 * units)`` and a recurrent kernel ``U`` of shape
    ``(units, 4 * units)`` with gate order ``[input, forget, cell, output]``.
    The forget-gate bias is initialised to 1, the standard trick to ease
    gradient flow at the start of training.
    """

    def __init__(self, in_features: int, units: int, *, rng: Optional[np.random.Generator] = None) -> None:
        super().__init__()
        if in_features <= 0 or units <= 0:
            raise ValueError("LSTM dimensions must be positive")
        rng = rng if rng is not None else np.random.default_rng(0)
        self.in_features = in_features
        self.units = units
        bias = zeros_init((4 * units,))
        bias[units : 2 * units] = 1.0
        self.params = {
            "W": glorot_uniform((in_features, 4 * units), rng),
            "U": np.concatenate([orthogonal((units, units), rng) for _ in range(4)], axis=1),
            "b": bias,
        }
        self.grads = {key: np.zeros_like(value) for key, value in self.params.items()}
        self._cache: Optional[Dict[str, List[np.ndarray]]] = None
        self._x: Optional[np.ndarray] = None

    def forward(self, x: np.ndarray, training: bool = False) -> np.ndarray:
        if x.ndim != 3:
            raise ValueError(
                f"LSTM expects input of shape (batch, time, features), got {x.shape}"
            )
        if x.shape[2] != self.in_features:
            raise ValueError(
                f"LSTM expected {self.in_features} input features, got {x.shape[2]}"
            )
        batch, steps, _ = x.shape
        units = self.units
        h = np.zeros((batch, units))
        c = np.zeros((batch, units))
        cache: Dict[str, List[np.ndarray]] = {
            "i": [], "f": [], "g": [], "o": [], "c": [], "h": [], "c_prev": [], "h_prev": [],
        }
        W, U, b = self.params["W"], self.params["U"], self.params["b"]
        for t in range(steps):
            h_prev, c_prev = h, c
            z = x[:, t, :] @ W + h_prev @ U + b
            i = _sigmoid(z[:, :units])
            f = _sigmoid(z[:, units : 2 * units])
            g = np.tanh(z[:, 2 * units : 3 * units])
            o = _sigmoid(z[:, 3 * units :])
            c = f * c_prev + i * g
            h = o * np.tanh(c)
            cache["i"].append(i)
            cache["f"].append(f)
            cache["g"].append(g)
            cache["o"].append(o)
            cache["c"].append(c)
            cache["h"].append(h)
            cache["c_prev"].append(c_prev)
            cache["h_prev"].append(h_prev)
        self._cache = cache
        self._x = x
        return h

    def backward(self, grad: np.ndarray) -> np.ndarray:
        if self._cache is None or self._x is None:
            raise RuntimeError("backward called before forward")
        x = self._x
        cache = self._cache
        batch, steps, _ = x.shape
        units = self.units
        W, U = self.params["W"], self.params["U"]

        grad_x = np.zeros_like(x)
        dh_next = grad.copy()
        dc_next = np.zeros((batch, units))
        dW = np.zeros_like(W)
        dU = np.zeros_like(U)
        db = np.zeros_like(self.params["b"])

        for t in range(steps - 1, -1, -1):
            i = cache["i"][t]
            f = cache["f"][t]
            g = cache["g"][t]
            o = cache["o"][t]
            c = cache["c"][t]
            c_prev = cache["c_prev"][t]
            h_prev = cache["h_prev"][t]

            tanh_c = np.tanh(c)
            do = dh_next * tanh_c
            dc = dh_next * o * (1.0 - tanh_c**2) + dc_next
            di = dc * g
            dg = dc * i
            df = dc * c_prev
            dc_next = dc * f

            dz_i = di * i * (1.0 - i)
            dz_f = df * f * (1.0 - f)
            dz_g = dg * (1.0 - g**2)
            dz_o = do * o * (1.0 - o)
            dz = np.concatenate([dz_i, dz_f, dz_g, dz_o], axis=1)

            dW += x[:, t, :].T @ dz
            dU += h_prev.T @ dz
            db += dz.sum(axis=0)
            grad_x[:, t, :] = dz @ W.T
            dh_next = dz @ U.T

        self.grads["W"] += dW
        self.grads["U"] += dU
        self.grads["b"] += db
        return grad_x
