"""A single-layer LSTM with full backpropagation through time.

The paper's embedding network (Table I) uses an LSTM input layer of 30
units that consumes the per-IP byte-count sequences and emits its final
hidden state to a stack of fully-connected layers.  This module implements
that layer in NumPy, vectorised over the batch dimension.

The implementation is built around four observations:

* all four gates share a single ``tanh`` pass per step by pre-scaling the
  pre-activations (``sigmoid(z) = 0.5 * tanh(0.5 z) + 0.5``); caching the
  *tanh-domain* values keeps every backward derivative a polynomial of the
  cache (``sigmoid' = 0.25 (1 - t^2)``);
* stacking ``[x_t | h_prev | 1]`` in one cached slab turns the whole
  per-step affine map into a single BLAS GEMM (``z = xh1 @ [W; U; b]``)
  and, transposed, the whole parameter gradient into a single ``beta=1``
  GEMM per step (``[dW; dU; db] += xh1^T @ dz``) — backward never
  materialises the ``(steps, batch, 4*units)`` gradient tensor;
* every elementwise op in the hot loop runs on small reused buffers that
  stay cache-resident, with per-gate scale constants folded into a single
  broadcast multiply;
* the sequence caches are allocated once per input shape and reused across
  calls — fresh multi-MB allocations are mmap-backed and their page faults
  would otherwise dominate the runtime.

Input shape:  ``(batch, time, features)``
Output shape: ``(batch, units)`` (the hidden state at the last timestep).
"""

from __future__ import annotations

from typing import Dict, Optional, Tuple

import numpy as np
from scipy.linalg.blas import dgemm, sgemm

from repro.nn.initializers import glorot_uniform, orthogonal, zeros_init
from repro.nn.kernels import lstm_kernels
from repro.nn.layers import Layer


def _sigmoid(x: np.ndarray) -> np.ndarray:
    # Numerically stable sigmoid via tanh: tanh saturates cleanly, so no
    # branch on the sign of x is needed and the whole array is one ufunc.
    return 0.5 * np.tanh(0.5 * x) + 0.5


class LSTM(Layer):
    """Long short-term memory layer returning the last hidden state.

    The gate kernels are packed into a single input kernel ``W`` of shape
    ``(features, 4 * units)`` and a recurrent kernel ``U`` of shape
    ``(units, 4 * units)`` with gate order ``[input, forget, cell, output]``.
    The forget-gate bias is initialised to 1, the standard trick to ease
    gradient flow at the start of training.
    """

    def __init__(self, in_features: int, units: int, *, rng: Optional[np.random.Generator] = None) -> None:
        super().__init__()
        if in_features <= 0 or units <= 0:
            raise ValueError("LSTM dimensions must be positive")
        rng = rng if rng is not None else np.random.default_rng(0)
        self.in_features = in_features
        self.units = units
        bias = zeros_init((4 * units,))
        bias[units : 2 * units] = 1.0
        self.params = {
            "W": glorot_uniform((in_features, 4 * units), rng),
            "U": np.concatenate([orthogonal((units, units), rng) for _ in range(4)], axis=1),
            "b": bias,
        }
        self.grads = {key: np.zeros_like(value) for key, value in self.params.items()}
        # Pre-activation scale: the sigmoid gates (i, f, o) consume 0.5 z so
        # that one tanh pass yields all four gates in tanh domain; dz_scale
        # undoes the per-gate constants of the backward derivatives.
        scale = np.full(4 * units, 0.5)
        scale[2 * units : 3 * units] = 1.0
        self._gate_scale = scale
        dz_scale = np.full(4 * units, 0.25)
        dz_scale[2 * units : 3 * units] = 0.5
        self._dz_scale = dz_scale
        self._workspaces: Dict[Tuple[int, int], Dict[str, np.ndarray]] = {}
        self._ws: Dict[str, np.ndarray] = {}
        self._cached = False
        self._x_shape: Optional[Tuple[int, int, int]] = None
        # Fused C kernels for the cell elementwise math; None -> NumPy path.
        self._kernels = lstm_kernels()

    # ------------------------------------------------------------- workspace
    def _workspace(self, batch: int, steps: int) -> Dict[str, np.ndarray]:
        """Reusable sequence buffers for one input shape.

        These are large (tens of MB at training shapes); allocating them
        fresh per call would cost more in page faults than the math itself.
        """
        key = (batch, steps)
        cached = self._workspaces.get(key)
        if cached is None:
            if len(self._workspaces) >= 4:  # bound retained memory
                self._workspaces.pop(next(iter(self._workspaces)))
            units, features = self.units, self.in_features
            width = features + units + 1
            xh1 = np.empty((steps + 1, batch, width))
            xh1[:, :, features + units] = 1.0  # the bias column, set once
            cached = {
                "xh1": xh1,
                "t_gates": np.empty((steps, batch, 4 * units)),
                "c": np.empty((steps + 1, batch, units)),
                "tanh_c": np.empty((steps, batch, units)),
                "grad_x": np.empty((steps, batch, features)),
                "grad_x_out": np.empty((batch, steps, features)),
                "z": np.empty((batch, 4 * units)),
                "dz": np.empty((batch, 4 * units)),
                "d4": np.empty((batch, 4 * units)),
                "ig": np.empty((batch, units)),
                "t1": np.empty((batch, units)),
                "t2": np.empty((batch, units)),
                "dh": np.empty((batch, units)),
                "dc": np.empty((batch, units)),
                "dc_next": np.empty((batch, units)),
                "wub_grad": np.empty((width, 4 * units)),
                "dz32": np.empty((batch, 4 * units), dtype=np.float32),
                "xh32": np.empty((batch, width), dtype=np.float32),
                "dh32": np.empty((batch, units), dtype=np.float32),
                "wub_grad32": np.empty((width, 4 * units), dtype=np.float32),
                "grad_x32": np.empty((steps, batch, features), dtype=np.float32),
            }
            self._workspaces[key] = cached
        self._ws = cached
        return cached

    # ----------------------------------------------------------------- forward
    def forward(self, x: np.ndarray, training: bool = False) -> np.ndarray:
        if x.ndim != 3:
            raise ValueError(
                f"LSTM expects input of shape (batch, time, features), got {x.shape}"
            )
        if x.shape[2] != self.in_features:
            raise ValueError(
                f"LSTM expected {self.in_features} input features, got {x.shape[2]}"
            )
        batch, steps, features = x.shape
        units = self.units
        W, U, b = self.params["W"], self.params["U"], self.params["b"]
        ws = self._workspace(batch, steps)

        # Stacked affine map [W; U; b], gate-scaled (see _gate_scale).
        wub = np.concatenate([W, U, b[None, :]], axis=0) * self._gate_scale
        xh1 = ws["xh1"]
        xh1[:steps, :, :features] = x.transpose(1, 0, 2)
        h = xh1[0, :, features : features + units]
        h[:] = 0.0

        t_gates = ws["t_gates"]
        c_states = ws["c"]
        tanh_c = ws["tanh_c"]
        c_states[0] = 0.0
        z = ws["z"]
        ig = ws["ig"]
        kernels = self._kernels
        wub_t = wub.T
        z_t = z.T
        for t in range(steps):
            # z = [x_t | h_prev | 1] @ [W; U; b] in one GEMM (F-contiguous
            # transposed views; dgemm writes the reused buffer in place).
            dgemm(1.0, a=wub_t, b=xh1[t].T, beta=0.0, c=z_t, overwrite_c=1)
            gate = t_gates[t]
            np.tanh(z, out=gate)
            c = c_states[t + 1]
            h = xh1[t + 1, :, features : features + units]
            if kernels is not None:
                kernels.cell_c(gate, c_states[t], c)
                np.tanh(c, out=tanh_c[t])
                kernels.cell_h(gate, tanh_c[t], h)
                continue
            ti = gate[:, :units]
            tf = gate[:, units : 2 * units]
            tg = gate[:, 2 * units : 3 * units]
            to = gate[:, 3 * units :]
            # c = f*c_prev + i*g with f = (tf+1)/2 and i = (ti+1)/2.
            np.multiply(tf, c_states[t], out=c)
            c += c_states[t]
            np.multiply(ti, tg, out=ig)
            ig += tg
            c += ig
            c *= 0.5
            np.tanh(c, out=tanh_c[t])
            # h = o * tanh(c) with o = (to+1)/2, written straight into the
            # next step's GEMM operand slot.
            np.multiply(to, tanh_c[t], out=h)
            h += tanh_c[t]
            h *= 0.5
        self._cached = True
        self._x_shape = (batch, steps, features)
        return xh1[steps, :, features : features + units].copy()

    # ---------------------------------------------------------------- backward
    def backward(self, grad: np.ndarray) -> np.ndarray:
        if not self._cached or self._x_shape is None:
            raise RuntimeError("backward called before forward")
        batch, steps, features = self._x_shape
        units = self.units
        W, U = self.params["W"], self.params["U"]
        ws = self._ws
        xh1 = ws["xh1"]
        t_gates = ws["t_gates"]
        c_states = ws["c"]
        tanh_c_all = ws["tanh_c"]
        grad_x_steps = ws["grad_x"]
        wub_grad = ws["wub_grad"]
        wub_grad[:] = 0.0

        dz = ws["dz"]
        d4 = ws["d4"]
        t1 = ws["t1"]
        t2 = ws["t2"]
        dh = ws["dh"]
        dh[:] = grad
        dc = ws["dc"]
        dc_next = ws["dc_next"]
        dc_next[:] = 0.0
        dz_scale = self._dz_scale
        kernels = self._kernels
        dz_t = dz.T
        dh_t = dh.T
        w_t = W.T
        u_t = U.T
        wub_grad_t = wub_grad.T
        if kernels is not None:
            # Mixed-precision backward: the three per-step GEMMs run in
            # float32 (gradient noise ~1e-7 relative, far inside training
            # and gradient-check tolerances) at twice the FLOP rate; the
            # recurrence state and the cell derivatives stay float64.
            dz32, xh32, dh32 = ws["dz32"], ws["xh32"], ws["dh32"]
            wub_grad32, grad_x32 = ws["wub_grad32"], ws["grad_x32"]
            wub_grad32[:] = 0.0
            w32 = W.astype(np.float32)
            u32 = U.astype(np.float32)
            dz32_t, xh32_t, dh32_t = dz32.T, xh32.T, dh32.T
            w32_t, u32_t, wub_grad32_t = w32.T, u32.T, wub_grad32.T
            for t in range(steps - 1, -1, -1):
                # One fused pass computes dz and dc_next (in place) from the
                # tanh-domain cache; see kernels.py for the derivatives.
                kernels.cell_backward(
                    t_gates[t], tanh_c_all[t], c_states[t], dh, dc_next, dz, dc_next
                )
                np.copyto(dz32, dz)
                np.copyto(xh32, xh1[t])
                sgemm(1.0, a=dz32_t, b=xh32_t, beta=1.0, c=wub_grad32_t, overwrite_c=1, trans_b=1)
                sgemm(1.0, a=w32_t, b=dz32_t, beta=0.0, c=grad_x32[t].T, overwrite_c=1, trans_a=1)
                sgemm(1.0, a=u32_t, b=dz32_t, beta=0.0, c=dh32_t, overwrite_c=1, trans_a=1)
                np.copyto(dh, dh32)
            self.grads["W"] += wub_grad32[:features]
            self.grads["U"] += wub_grad32[features : features + units]
            self.grads["b"] += wub_grad32[features + units]
            grad_x = ws["grad_x_out"]
            np.copyto(grad_x, grad_x32.transpose(1, 0, 2))
            return grad_x
        for t in range(steps - 1, -1, -1):
            gate = t_gates[t]
            ti = gate[:, :units]
            tf = gate[:, units : 2 * units]
            tg = gate[:, 2 * units : 3 * units]
            to = gate[:, 3 * units :]
            tanh_c = tanh_c_all[t]
            # In tanh domain: sigmoid' = 0.25 (1 - t^2), tanh' = 1 - t^2;
            # the 0.25/0.5 constants are applied in one pass via dz_scale.
            np.multiply(gate, gate, out=d4)
            np.subtract(1.0, d4, out=d4)
            d4 *= dz_scale
            np.multiply(tanh_c, tanh_c, out=t1)
            np.subtract(1.0, t1, out=t1)
            np.add(to, 1.0, out=t2)
            t2 *= t1
            # dc = dh * o (1 - tanh_c^2) + dc_next, with o = (to+1)/2.
            np.multiply(dh, t2, out=dc)
            dc *= 0.5
            dc += dc_next
            # dz blocks: i <- dc*g*i', f <- dc*c_prev*f', g <- dc*i*g',
            # o <- dh*tanh_c*o'  (gate-derivative constants live in d4).
            np.multiply(dh, tanh_c, out=t1)
            np.multiply(t1, d4[:, 3 * units :], out=dz[:, 3 * units :])
            np.multiply(dc, tg, out=t1)
            np.multiply(t1, d4[:, :units], out=dz[:, :units])
            np.multiply(dc, c_states[t], out=t1)
            np.multiply(t1, d4[:, units : 2 * units], out=dz[:, units : 2 * units])
            np.add(ti, 1.0, out=t1)
            t1 *= dc
            np.multiply(t1, d4[:, 2 * units : 3 * units], out=dz[:, 2 * units : 3 * units])
            # dc_next = dc * f with f = (tf+1)/2.
            np.add(tf, 1.0, out=t1)
            np.multiply(dc, t1, out=dc_next)
            dc_next *= 0.5
            # One beta=1 GEMM accumulates [dW; dU; db] (the xh1 slab holds
            # [x_t | h_prev | 1]); grad_x and the dh recurrence are GEMMs.
            dgemm(1.0, a=dz.T, b=xh1[t].T, beta=1.0, c=wub_grad.T, overwrite_c=1, trans_b=1)
            dgemm(1.0, a=W.T, b=dz.T, beta=0.0, c=grad_x_steps[t].T, overwrite_c=1, trans_a=1)
            dgemm(1.0, a=U.T, b=dz.T, beta=0.0, c=dh.T, overwrite_c=1, trans_a=1)
        self.grads["W"] += wub_grad[:features]
        self.grads["U"] += wub_grad[features : features + units]
        self.grads["b"] += wub_grad[features + units]
        # Reused output buffer: valid until the next backward() call, which
        # is the lifetime the layer-chain contract needs.
        grad_x = ws["grad_x_out"]
        np.copyto(grad_x, grad_x_steps.transpose(1, 0, 2))
        return grad_x
