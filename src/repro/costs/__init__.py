"""Operational-cost modelling (the framework of Juarez et al., Table III)."""

from repro.costs.model import CostModel, CostBreakdown, Complexity
from repro.costs.catalogue import (
    SystemProfile,
    TABLE_III_SYSTEMS,
    adaptive_profile,
    system_profiles,
    table_iii_rows,
)

__all__ = [
    "CostModel",
    "CostBreakdown",
    "Complexity",
    "SystemProfile",
    "TABLE_III_SYSTEMS",
    "adaptive_profile",
    "system_profiles",
    "table_iii_rows",
]
