"""The data-collection / training / testing / updating cost framework.

Section VIII of the paper adopts the cost model of Juarez et al. [18]:

* collection cost of a dataset D: ``col(D) = col(1) * n * m * i`` where
  ``n`` is the number of classes, ``m`` the number of page versions that
  differ enough to hurt the classifier, and ``i`` the number of instances
  the model needs per class/version;
* training cost: ``col(D) + train(D, F, C)``;
* testing cost: ``col(T) + test(T, F, C)`` with ``T = v * p`` victim loads;
* updating cost: ``col(D') + update(D', F, C)`` — for retraining systems
  this includes a full retrain, for the adaptive system only re-embedding.

The model is deliberately unit-agnostic: costs are expressed in "seconds of
work" given per-operation constants, so different systems can be compared
on equal terms and the constants can be re-calibrated from measurements.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass


class Complexity(enum.Enum):
    """Coarse model-complexity classes used in Table III."""

    LOW = "Low"
    MODERATE = "Moderate"
    HIGH = "High"


@dataclass(frozen=True)
class CostBreakdown:
    """Costs (in abstract work units / seconds) of one deployment phase."""

    collection: float
    computation: float

    @property
    def total(self) -> float:
        return self.collection + self.computation


@dataclass(frozen=True)
class CostModel:
    """Juarez-style cost model for one fingerprinting system.

    Parameters
    ----------
    instances_per_class:
        ``i`` — labelled traces the system needs per class (Table III's
        "Instances" column).
    collection_cost_per_trace:
        ``col(1)`` — seconds to crawl one page load.
    feature_cost_per_trace:
        ``F`` — seconds to extract features / embed one trace.
    training_cost_per_trace:
        ``C`` during training — seconds of model fitting per training trace
        (zero for systems that do not fit a parametric model).
    inference_cost_per_trace:
        seconds to classify one captured trace.
    requires_retraining:
        whether an update to the monitored set requires refitting the model
        (Table III's "Retraining" column).
    update_instances_per_class:
        traces that must be re-collected per updated class.
    """

    name: str
    instances_per_class: int
    collection_cost_per_trace: float = 1.0
    feature_cost_per_trace: float = 0.01
    training_cost_per_trace: float = 0.05
    inference_cost_per_trace: float = 1.0
    requires_retraining: bool = True
    update_instances_per_class: int = 0
    complexity: Complexity = Complexity.MODERATE

    def __post_init__(self) -> None:
        if self.instances_per_class <= 0:
            raise ValueError("instances_per_class must be positive")
        if min(
            self.collection_cost_per_trace,
            self.feature_cost_per_trace,
            self.training_cost_per_trace,
            self.inference_cost_per_trace,
        ) < 0:
            raise ValueError("costs must be non-negative")

    # ------------------------------------------------------------- collection
    def collection_cost(self, n_classes: int, versions: int = 1, instances: int | None = None) -> float:
        """``col(D) = col(1) * n * m * i``."""
        if n_classes <= 0 or versions <= 0:
            raise ValueError("n_classes and versions must be positive")
        i = instances if instances is not None else self.instances_per_class
        return self.collection_cost_per_trace * n_classes * versions * i

    # --------------------------------------------------------------- training
    def training_cost(self, n_classes: int, versions: int = 1) -> CostBreakdown:
        """Cost of provisioning the system from scratch."""
        n_traces = n_classes * versions * self.instances_per_class
        computation = n_traces * (self.feature_cost_per_trace + self.training_cost_per_trace)
        return CostBreakdown(collection=self.collection_cost(n_classes, versions), computation=computation)

    # ---------------------------------------------------------------- testing
    def testing_cost(self, victims: int, pages_per_victim: int) -> CostBreakdown:
        """Cost of classifying ``victims * pages_per_victim`` captured loads."""
        if victims <= 0 or pages_per_victim <= 0:
            raise ValueError("victims and pages_per_victim must be positive")
        n_traces = victims * pages_per_victim
        computation = n_traces * (self.feature_cost_per_trace + self.inference_cost_per_trace)
        # Captured victim traffic costs the adversary nothing to collect.
        return CostBreakdown(collection=0.0, computation=computation)

    # --------------------------------------------------------------- updating
    def update_cost(self, updated_classes: int, total_classes: int) -> CostBreakdown:
        """Cost of keeping up with ``updated_classes`` changed pages.

        Retraining systems pay the model-fitting cost over the *entire*
        training corpus again; embedding/instance-based systems only pay for
        collecting and embedding the refreshed classes.
        """
        if updated_classes < 0 or total_classes <= 0:
            raise ValueError("updated_classes must be >= 0 and total_classes > 0")
        if updated_classes == 0:
            return CostBreakdown(collection=0.0, computation=0.0)
        refresh_instances = self.update_instances_per_class or self.instances_per_class
        collection = self.collection_cost_per_trace * updated_classes * refresh_instances
        refreshed_traces = updated_classes * refresh_instances
        computation = refreshed_traces * self.feature_cost_per_trace
        if self.requires_retraining:
            full_corpus = total_classes * self.instances_per_class
            computation += full_corpus * self.training_cost_per_trace
        return CostBreakdown(collection=collection, computation=computation)

    def yearly_update_cost(self, total_classes: int, update_fraction_per_week: float) -> float:
        """Total yearly update cost under a weekly page-churn rate."""
        if not 0.0 <= update_fraction_per_week <= 1.0:
            raise ValueError("update_fraction_per_week must be in [0, 1]")
        per_week = self.update_cost(
            updated_classes=int(round(update_fraction_per_week * total_classes)),
            total_classes=total_classes,
        ).total
        return 52.0 * per_week
