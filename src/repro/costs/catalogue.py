"""The systems compared in Table III and their cost-model parameters.

Each entry mirrors one row of Table III of the paper: the protocol the
system targets, the largest class count it was evaluated on, whether it was
evaluated under distributional shift, the instances per class it needs for
training and updates, its complexity class and whether updates require
retraining.  The per-trace cost constants feed the quantitative
:class:`~repro.costs.model.CostModel` used by the Table III bench.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List

from repro.costs.model import Complexity, CostModel


@dataclass(frozen=True)
class SystemProfile:
    """One row of Table III plus the cost model that quantifies it."""

    name: str
    protocol: str
    max_classes: int
    handles_distribution_shift: bool
    training_instances: str
    complexity: Complexity
    requires_retraining: bool
    update_instances: str
    cost_model: CostModel


def _model(
    name: str,
    instances: int,
    *,
    retrain: bool,
    complexity: Complexity,
    train_cost: float,
    update_instances: int | None = None,
) -> CostModel:
    return CostModel(
        name=name,
        instances_per_class=instances,
        collection_cost_per_trace=1.0,
        feature_cost_per_trace=0.02 if complexity is not Complexity.HIGH else 0.05,
        training_cost_per_trace=train_cost,
        inference_cost_per_trace=2.0 if complexity is Complexity.HIGH else 0.5,
        requires_retraining=retrain,
        update_instances_per_class=update_instances or instances,
        complexity=complexity,
    )


TABLE_III_SYSTEMS: List[SystemProfile] = [
    SystemProfile(
        name="Adaptive Fingerprinting",
        protocol="TLS",
        max_classes=13_000,
        handles_distribution_shift=True,
        training_instances="90",
        complexity=Complexity.HIGH,
        requires_retraining=False,
        update_instances="90",
        cost_model=_model("Adaptive Fingerprinting", 90, retrain=False, complexity=Complexity.HIGH, train_cost=0.20),
    ),
    SystemProfile(
        name="Miller et al.",
        protocol="TLS",
        max_classes=500,
        handles_distribution_shift=False,
        training_instances="1-200",
        complexity=Complexity.MODERATE,
        requires_retraining=True,
        update_instances="1-200",
        cost_model=_model("Miller et al.", 100, retrain=True, complexity=Complexity.MODERATE, train_cost=0.05),
    ),
    SystemProfile(
        name="Bissias et al.",
        protocol="SSL",
        max_classes=100,
        handles_distribution_shift=False,
        training_instances="?",
        complexity=Complexity.LOW,
        requires_retraining=False,
        update_instances="?",
        cost_model=_model("Bissias et al.", 20, retrain=False, complexity=Complexity.LOW, train_cost=0.0),
    ),
    SystemProfile(
        name="Triplet Fingerprinting",
        protocol="Tor",
        max_classes=775,
        handles_distribution_shift=True,
        training_instances="25",
        complexity=Complexity.HIGH,
        requires_retraining=False,
        update_instances="5-20",
        cost_model=_model(
            "Triplet Fingerprinting", 25, retrain=False, complexity=Complexity.HIGH, train_cost=0.20, update_instances=20
        ),
    ),
    SystemProfile(
        name="Deep Fingerprinting",
        protocol="Tor",
        max_classes=95,
        handles_distribution_shift=False,
        training_instances="1000",
        complexity=Complexity.HIGH,
        requires_retraining=True,
        update_instances="1000",
        cost_model=_model("Deep Fingerprinting", 1000, retrain=True, complexity=Complexity.HIGH, train_cost=0.20),
    ),
    SystemProfile(
        name="Var-CNN",
        protocol="Tor",
        max_classes=900,
        handles_distribution_shift=False,
        training_instances="10-1000",
        complexity=Complexity.HIGH,
        requires_retraining=True,
        update_instances="10-1000",
        cost_model=_model("Var-CNN", 100, retrain=True, complexity=Complexity.HIGH, train_cost=0.20),
    ),
    SystemProfile(
        name="k-fingerprinting",
        protocol="Tor",
        max_classes=100,
        handles_distribution_shift=False,
        training_instances="60",
        complexity=Complexity.MODERATE,
        requires_retraining=False,
        update_instances="60",
        cost_model=_model("k-fingerprinting", 60, retrain=False, complexity=Complexity.MODERATE, train_cost=0.02),
    ),
]


def system_profiles() -> Dict[str, SystemProfile]:
    """Table III systems keyed by name."""
    return {profile.name: profile for profile in TABLE_III_SYSTEMS}


def adaptive_profile() -> SystemProfile:
    """The paper's own system ("Adaptive Fingerprinting") from Table III.

    The scenario engine prices churn and drift with this profile's cost
    model: refreshed classes pay collection + re-embedding only (no
    retraining), which is the operational claim the scenarios exercise
    against a live deployment.
    """
    return system_profiles()["Adaptive Fingerprinting"]


def table_iii_rows() -> List[Dict[str, object]]:
    """Table III as a list of plain dictionaries (one per system row)."""
    rows = []
    for profile in TABLE_III_SYSTEMS:
        rows.append(
            {
                "Name": profile.name,
                "Protocol": profile.protocol,
                "Classes": profile.max_classes,
                "D. Shift": profile.handles_distribution_shift,
                "Instances": profile.training_instances,
                "Complexity": profile.complexity.value,
                "Retraining": profile.requires_retraining,
                "Update Instances": profile.update_instances,
            }
        )
    return rows
