"""A Deep-Fingerprinting-style end-to-end softmax classifier.

Deep Fingerprinting (Sirinam et al., CCS 2018) trains a deep convolutional
network whose final softmax layer has one output per monitored page, so the
whole network is tied to the label set and must be retrained whenever the
monitored pages change — the central operational-cost contrast of Table III.

Two architectures are provided:

* ``architecture="cnn"`` — a scaled-down 1-D CNN in the spirit of the
  original: Conv1D/ReLU/MaxPool blocks over the time-major trace, followed
  by dense layers and a per-class softmax.  The original uses many more
  filters and GPU training; the reduction is recorded in DESIGN.md.
* ``architecture="mlp"`` (default) — a dense network over the flattened
  sequences, useful where the traces are too short for pooling or where
  speed matters (the Table III cost bench uses it).

Both share the property that matters for the paper's comparison: feature
extraction and classification are fused and class-coupled, so any change to
the monitored set forces a retrain.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

import numpy as np

from repro.nn import Adam, Conv1D, Dense, Dropout, Flatten, MaxPool1D, ReLU, Sequential, SoftmaxCrossEntropy
from repro.traces.dataset import TraceDataset


class DeepFingerprintingClassifier:
    """End-to-end per-class softmax classifier over trace sequences."""

    def __init__(
        self,
        hidden_sizes: Sequence[int] = (128, 64),
        epochs: int = 30,
        batch_size: int = 64,
        learning_rate: float = 0.003,
        dropout: float = 0.1,
        seed: int = 0,
        architecture: str = "mlp",
        conv_filters: Sequence[int] = (16, 32),
        kernel_size: int = 5,
        pool_size: int = 2,
    ) -> None:
        if epochs <= 0 or batch_size <= 0:
            raise ValueError("epochs and batch_size must be positive")
        if architecture not in ("mlp", "cnn"):
            raise ValueError(f"unknown architecture {architecture!r}; expected 'mlp' or 'cnn'")
        self.hidden_sizes = tuple(int(h) for h in hidden_sizes)
        self.epochs = int(epochs)
        self.batch_size = int(batch_size)
        self.learning_rate = float(learning_rate)
        self.dropout = float(dropout)
        self.seed = int(seed)
        self.architecture = architecture
        self.conv_filters = tuple(int(f) for f in conv_filters)
        self.kernel_size = int(kernel_size)
        self.pool_size = int(pool_size)
        self.network: Optional[Sequential] = None
        self._class_names: List[str] = []
        self._loss_history: List[float] = []
        self._feature_mean: Optional[np.ndarray] = None
        self._feature_std: Optional[np.ndarray] = None

    # ----------------------------------------------------------------- train
    def _network_inputs(self, dataset: TraceDataset) -> np.ndarray:
        """Dataset traces in the representation the architecture consumes."""
        if self.architecture == "cnn":
            return dataset.model_inputs()  # (n, time, channels)
        return dataset.data.reshape(len(dataset), -1)

    def _standardise(self, inputs: np.ndarray, fit: bool) -> np.ndarray:
        flat = inputs.reshape(inputs.shape[0], -1)
        if fit:
            self._feature_mean = flat.mean(axis=0)
            self._feature_std = flat.std(axis=0)
            self._feature_std[self._feature_std == 0] = 1.0
        standardised = (flat - self._feature_mean) / self._feature_std
        return standardised.reshape(inputs.shape)

    def fit(self, dataset: TraceDataset) -> "DeepFingerprintingClassifier":
        """Train the classifier on a labelled dataset (class-coupled)."""
        inputs = self._standardise(self._network_inputs(dataset), fit=True)
        labels = dataset.labels
        n_classes = dataset.n_classes
        rng = np.random.default_rng(self.seed)
        if self.architecture == "cnn":
            self.network = self._build_cnn(inputs.shape[1], inputs.shape[2], n_classes, rng)
        else:
            self.network = self._build_mlp(inputs.shape[1], n_classes, rng)
        self._class_names = list(dataset.class_names)
        loss_fn = SoftmaxCrossEntropy()
        optimizer = Adam(self.network, learning_rate=self.learning_rate)
        self._loss_history = []
        for _ in range(self.epochs):
            order = rng.permutation(len(inputs))
            epoch_losses = []
            for start in range(0, len(order), self.batch_size):
                batch = order[start : start + self.batch_size]
                optimizer.zero_grad()
                logits = self.network.forward(inputs[batch], training=True)
                epoch_losses.append(loss_fn.forward(logits, labels[batch]))
                self.network.backward(loss_fn.backward(logits, labels[batch]))
                optimizer.step()
            self._loss_history.append(float(np.mean(epoch_losses)))
        return self

    def _build_mlp(self, n_features: int, n_classes: int, rng: np.random.Generator) -> Sequential:
        layers = []
        previous = n_features
        for width in self.hidden_sizes:
            layers.append(Dense(previous, width, rng=rng))
            layers.append(ReLU())
            if self.dropout > 0:
                layers.append(Dropout(self.dropout, rng=rng))
            previous = width
        layers.append(Dense(previous, n_classes, rng=rng))
        return Sequential(layers)

    def _build_cnn(self, time: int, channels: int, n_classes: int, rng: np.random.Generator) -> Sequential:
        layers: List = []
        current_time, current_channels = time, channels
        for filters in self.conv_filters:
            if current_time < self.kernel_size:
                break
            layers.append(Conv1D(current_channels, filters, self.kernel_size, rng=rng))
            layers.append(ReLU())
            current_time = current_time - self.kernel_size + 1
            current_channels = filters
            if current_time >= self.pool_size:
                layers.append(MaxPool1D(self.pool_size))
                current_time = current_time // self.pool_size
        layers.append(Flatten())
        previous = current_time * current_channels
        for width in self.hidden_sizes:
            layers.append(Dense(previous, width, rng=rng))
            layers.append(ReLU())
            if self.dropout > 0:
                layers.append(Dropout(self.dropout, rng=rng))
            previous = width
        layers.append(Dense(previous, n_classes, rng=rng))
        return Sequential(layers)

    @property
    def fitted(self) -> bool:
        return self.network is not None

    @property
    def loss_history(self) -> List[float]:
        return list(self._loss_history)

    # --------------------------------------------------------------- predict
    def predict_proba(self, dataset: TraceDataset) -> np.ndarray:
        if not self.fitted:
            raise RuntimeError("classifier has not been fitted")
        inputs = self._standardise(self._network_inputs(dataset), fit=False)
        logits = self.network.forward(inputs, training=False)
        return SoftmaxCrossEntropy.softmax(logits)

    def rank_labels(self, dataset: TraceDataset) -> List[List[str]]:
        probabilities = self.predict_proba(dataset)
        rankings = []
        for row in probabilities:
            order = np.argsort(-row, kind="stable")
            rankings.append([self._class_names[i] for i in order])
        return rankings

    def topn_accuracy(self, dataset: TraceDataset, ns: Sequence[int] = (1, 3, 5, 10)) -> Dict[int, float]:
        rankings = self.rank_labels(dataset)
        true_names = [dataset.label_name(label) for label in dataset.labels]
        return {
            int(n): sum(1 for ranked, name in zip(rankings, true_names) if name in ranked[:n]) / len(true_names)
            for n in ns
        }
