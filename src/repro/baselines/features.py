"""Hand-crafted trace features for the classical attacks.

k-fingerprinting and the other pre-deep-learning attacks operate on
engineered summary statistics of a trace rather than on the raw sequences.
The feature set below covers the families those papers use: volume totals,
burst statistics, ordering features and inter-sequence ratios, computed per
IP sequence and over the whole trace.
"""

from __future__ import annotations

from typing import List

import numpy as np

from repro.traces.dataset import TraceDataset


def feature_names(n_sequences: int) -> List[str]:
    """Names of the features produced by :func:`handcrafted_features`."""
    per_sequence = [
        "total_bytes",
        "n_bursts",
        "mean_burst",
        "std_burst",
        "max_burst",
        "first_burst",
        "last_burst",
        "first_active_position",
        "last_active_position",
    ]
    names = []
    for sequence_index in range(n_sequences):
        names.extend(f"seq{sequence_index}_{name}" for name in per_sequence)
    names.extend(["trace_total_bytes", "incoming_outgoing_ratio", "active_fraction"])
    return names


def handcrafted_features(dataset: TraceDataset, *, log_scaled: bool = True) -> np.ndarray:
    """Feature matrix of shape ``(n_traces, n_features)`` for a dataset."""
    data = np.expm1(dataset.data) if log_scaled else dataset.data
    n_traces, n_sequences, _ = data.shape
    features = np.zeros((n_traces, len(feature_names(n_sequences))))
    for trace_index in range(n_traces):
        features[trace_index] = _trace_features(data[trace_index])
    return features


def _trace_features(trace: np.ndarray) -> np.ndarray:
    n_sequences, length = trace.shape
    columns: List[float] = []
    for sequence in trace:
        active = np.flatnonzero(sequence > 0)
        bursts = sequence[active]
        if bursts.size == 0:
            columns.extend([0.0] * 9)
            continue
        columns.extend([
            float(bursts.sum()),
            float(bursts.size),
            float(bursts.mean()),
            float(bursts.std()),
            float(bursts.max()),
            float(bursts[0]),
            float(bursts[-1]),
            float(active[0]),
            float(active[-1]),
        ])
    total = float(trace.sum())
    outgoing = float(trace[0].sum())
    incoming = float(trace[1:].sum()) if n_sequences > 1 else 0.0
    ratio = incoming / outgoing if outgoing > 0 else 0.0
    active_fraction = float((trace > 0).mean())
    columns.extend([total, ratio, active_fraction])
    return np.array(columns)
