"""Comparator fingerprinting attacks (Related Work / Table III).

These are the systems the paper compares operational costs against.  They
are class-coupled classifiers — feature extraction and classification are
fit to the label set seen at training time — so, unlike the embedding
approach, they must be retrained whenever the monitored pages change.
Every baseline is implemented from scratch on NumPy so the cost and
accuracy comparisons run in this environment:

* :class:`~repro.baselines.kfp.KFingerprintingAttack` — k-fingerprinting
  (Hayes & Danezis): random-forest leaf vectors + k-NN.
* :class:`~repro.baselines.hmm.UserJourneyHMM` — Miller et al.: per-page
  classifier combined with a hidden Markov model over the site's link graph
  to decode browsing journeys.
* :class:`~repro.baselines.cumul.CumulAttack` — CUMUL-style cumulative
  features with a one-vs-rest linear SVM.
* :class:`~repro.baselines.deep_fingerprinting.DeepFingerprintingClassifier`
  — a Deep-Fingerprinting-style end-to-end softmax classifier (MLP stand-in
  for the paper's CNN; see the module docstring for the substitution note).
* :class:`~repro.baselines.bissias.CrossCorrelationAttack` — Bissias et
  al.'s similarity-profile classifier.
"""

from repro.baselines.features import handcrafted_features, feature_names
from repro.baselines.random_forest import DecisionTree, RandomForest
from repro.baselines.kfp import KFingerprintingAttack
from repro.baselines.hmm import UserJourneyHMM
from repro.baselines.cumul import CumulAttack, LinearSVM
from repro.baselines.deep_fingerprinting import DeepFingerprintingClassifier
from repro.baselines.bissias import CrossCorrelationAttack

__all__ = [
    "handcrafted_features",
    "feature_names",
    "DecisionTree",
    "RandomForest",
    "KFingerprintingAttack",
    "UserJourneyHMM",
    "CumulAttack",
    "LinearSVM",
    "DeepFingerprintingClassifier",
    "CrossCorrelationAttack",
]
