"""k-fingerprinting (Hayes & Danezis, USENIX Security 2016).

The attack extracts hand-crafted features, trains a random forest, and then
uses the vector of leaf indices each trace lands in as its *fingerprint*:
unknown traces are classified by k-NN over the Hamming distance between
leaf vectors.  It is a class-coupled design — adding or changing monitored
pages requires refitting the forest — which is exactly the operational-cost
contrast Table III draws against the embedding-based approach.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

import numpy as np

from repro.baselines.features import handcrafted_features
from repro.baselines.random_forest import RandomForest
from repro.traces.dataset import TraceDataset


class KFingerprintingAttack:
    """The k-fingerprinting webpage/website fingerprinting attack."""

    def __init__(
        self,
        n_trees: int = 40,
        max_depth: int = 12,
        k_neighbours: int = 5,
        seed: int = 0,
        log_scaled: bool = True,
    ) -> None:
        if k_neighbours <= 0:
            raise ValueError("k_neighbours must be positive")
        self.forest = RandomForest(n_trees=n_trees, max_depth=max_depth, seed=seed)
        self.k_neighbours = int(k_neighbours)
        self.log_scaled = bool(log_scaled)
        self._reference_leaves: Optional[np.ndarray] = None
        self._reference_labels: Optional[np.ndarray] = None
        self._class_names: List[str] = []

    # ----------------------------------------------------------------- train
    def fit(self, dataset: TraceDataset) -> "KFingerprintingAttack":
        """Train the forest and build the leaf-vector reference corpus."""
        features = handcrafted_features(dataset, log_scaled=self.log_scaled)
        self.forest.fit(features, dataset.labels)
        self._reference_leaves = self.forest.apply(features)
        self._reference_labels = dataset.labels.copy()
        self._class_names = list(dataset.class_names)
        return self

    @property
    def fitted(self) -> bool:
        return self._reference_leaves is not None

    def refresh_reference(self, dataset: TraceDataset) -> None:
        """Replace the leaf-vector reference corpus without refitting the forest.

        This is k-fingerprinting's cheap update path: after the initial
        calibration the forest stays fixed and only the reference
        fingerprints are recomputed from freshly collected traces.  Classes
        present in ``dataset`` replace their old reference vectors.
        """
        if not self.fitted:
            raise RuntimeError("attack has not been fitted")
        features = handcrafted_features(dataset, log_scaled=self.log_scaled)
        new_leaves = self.forest.apply(features)
        new_labels = np.array(
            [self._class_names.index(dataset.label_name(label)) for label in dataset.labels], dtype=np.int64
        )
        refreshed_classes = set(int(l) for l in new_labels)
        keep = np.array([int(l) not in refreshed_classes for l in self._reference_labels], dtype=bool)
        self._reference_leaves = np.concatenate([self._reference_leaves[keep], new_leaves])
        self._reference_labels = np.concatenate([self._reference_labels[keep], new_labels])

    # --------------------------------------------------------------- predict
    def rank_labels(self, dataset: TraceDataset) -> List[List[str]]:
        """Ranked candidate labels for every trace of ``dataset``."""
        if not self.fitted:
            raise RuntimeError("attack has not been fitted")
        features = handcrafted_features(dataset, log_scaled=self.log_scaled)
        leaves = self.forest.apply(features)
        rankings: List[List[str]] = []
        for row in leaves:
            # Hamming similarity against the reference leaf vectors.
            matches = (self._reference_leaves == row[None, :]).sum(axis=1)
            order = np.argsort(-matches, kind="stable")[: self.k_neighbours]
            votes: Dict[int, float] = {}
            for neighbour in order:
                label = int(self._reference_labels[neighbour])
                votes[label] = votes.get(label, 0.0) + float(matches[neighbour])
            ranked_ids = sorted(votes, key=lambda label: -votes[label])
            # Fall back to forest probabilities for labels outside the k-NN vote.
            rankings.append([self._class_names[label] for label in ranked_ids])
        return rankings

    def topn_accuracy(self, dataset: TraceDataset, ns: Sequence[int] = (1, 3, 5, 10)) -> Dict[int, float]:
        """Top-n accuracy against a labelled test set.

        The test dataset must use the same class-name space as the training
        dataset (unknown names simply never match, scoring zero).
        """
        rankings = self.rank_labels(dataset)
        true_names = [dataset.label_name(label) for label in dataset.labels]
        results: Dict[int, float] = {}
        for n in ns:
            hits = sum(1 for ranked, name in zip(rankings, true_names) if name in ranked[:n])
            results[int(n)] = hits / len(true_names)
        return results
