"""CUMUL-style attack (Panchenko et al., NDSS 2016).

CUMUL interpolates the cumulative byte-count curve of a trace at a fixed
number of points and feeds the resulting feature vector to a support vector
machine.  Scikit-learn is unavailable offline, so a one-vs-rest linear SVM
trained with sub-gradient descent on the hinge loss is implemented here;
for the linearly-separable-ish feature space CUMUL produces it is a faithful
stand-in for the paper's libSVM baseline.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

import numpy as np

from repro.traces.dataset import TraceDataset


def cumulative_features(dataset: TraceDataset, n_points: int = 30, *, log_scaled: bool = True) -> np.ndarray:
    """CUMUL features: the cumulative-volume curve sampled at fixed points."""
    if n_points <= 1:
        raise ValueError("n_points must be at least 2")
    data = np.expm1(dataset.data) if log_scaled else dataset.data
    n_traces, n_sequences, length = data.shape
    sample_positions = np.linspace(0, length - 1, n_points)
    features = np.zeros((n_traces, n_sequences * n_points + 2))
    for index in range(n_traces):
        trace = data[index]
        columns = []
        for sequence in trace:
            cumulative = np.cumsum(sequence)
            columns.append(np.interp(sample_positions, np.arange(length), cumulative))
        total_in = float(trace[1:].sum()) if n_sequences > 1 else 0.0
        total_out = float(trace[0].sum())
        features[index] = np.concatenate(columns + [[total_in, total_out]])
    # Normalise feature scales so the SVM's single learning rate suits all.
    scale = np.abs(features).max(axis=0)
    scale[scale == 0] = 1.0
    return features / scale


class LinearSVM:
    """One-vs-rest linear SVM trained with sub-gradient descent."""

    def __init__(self, c: float = 1.0, epochs: int = 60, learning_rate: float = 0.05, seed: int = 0) -> None:
        if c <= 0 or epochs <= 0 or learning_rate <= 0:
            raise ValueError("c, epochs and learning_rate must be positive")
        self.c = float(c)
        self.epochs = int(epochs)
        self.learning_rate = float(learning_rate)
        self.seed = int(seed)
        self._weights: Optional[np.ndarray] = None
        self._bias: Optional[np.ndarray] = None

    def fit(self, features: np.ndarray, labels: np.ndarray) -> "LinearSVM":
        features = np.asarray(features, dtype=np.float64)
        labels = np.asarray(labels, dtype=np.int64)
        n_samples, n_features = features.shape
        n_classes = int(labels.max()) + 1
        rng = np.random.default_rng(self.seed)
        self._weights = np.zeros((n_classes, n_features))
        self._bias = np.zeros(n_classes)
        targets = np.where(labels[:, None] == np.arange(n_classes)[None, :], 1.0, -1.0)
        for epoch in range(self.epochs):
            order = rng.permutation(n_samples)
            lr = self.learning_rate / (1.0 + 0.1 * epoch)
            for index in order:
                x = features[index]
                margins = targets[index] * (self._weights @ x + self._bias)
                violating = margins < 1.0
                # L2 regularisation pulls weights towards zero every step.
                self._weights *= 1.0 - lr / (self.c * n_samples)
                self._weights[violating] += lr * targets[index, violating, None] * x[None, :]
                self._bias[violating] += lr * targets[index, violating]
        return self

    def decision_function(self, features: np.ndarray) -> np.ndarray:
        if self._weights is None:
            raise RuntimeError("SVM has not been fitted")
        features = np.atleast_2d(np.asarray(features, dtype=np.float64))
        return features @ self._weights.T + self._bias

    def predict(self, features: np.ndarray) -> np.ndarray:
        return self.decision_function(features).argmax(axis=1)


class CumulAttack:
    """CUMUL features + one-vs-rest linear SVM."""

    def __init__(self, n_points: int = 30, log_scaled: bool = True, **svm_kwargs) -> None:
        self.n_points = int(n_points)
        self.log_scaled = bool(log_scaled)
        self.svm = LinearSVM(**svm_kwargs)
        self._class_names: List[str] = []

    def fit(self, dataset: TraceDataset) -> "CumulAttack":
        features = cumulative_features(dataset, self.n_points, log_scaled=self.log_scaled)
        self.svm.fit(features, dataset.labels)
        self._class_names = list(dataset.class_names)
        return self

    @property
    def fitted(self) -> bool:
        return bool(self._class_names)

    def rank_labels(self, dataset: TraceDataset) -> List[List[str]]:
        if not self.fitted:
            raise RuntimeError("attack has not been fitted")
        features = cumulative_features(dataset, self.n_points, log_scaled=self.log_scaled)
        scores = self.svm.decision_function(features)
        rankings = []
        for row in scores:
            order = np.argsort(-row, kind="stable")
            rankings.append([self._class_names[i] for i in order])
        return rankings

    def topn_accuracy(self, dataset: TraceDataset, ns: Sequence[int] = (1, 3, 5, 10)) -> Dict[int, float]:
        rankings = self.rank_labels(dataset)
        true_names = [dataset.label_name(label) for label in dataset.labels]
        return {
            int(n): sum(1 for ranked, name in zip(rankings, true_names) if name in ranked[:n]) / len(true_names)
            for n in ns
        }
