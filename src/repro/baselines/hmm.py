"""Miller et al.'s user-journey HMM (PETS 2014).

A per-page classifier assigns each observed page load a distribution over
candidate pages; a hidden Markov model whose transition structure is the
website's hyperlink graph then decodes the most likely *sequence* of pages
(the "user journey"), exploiting the fact that consecutive page loads are
not independent.  The paper compares against this system both for accuracy
on 500-page sets and for its retraining cost under content drift.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.web.website import Website


class UserJourneyHMM:
    """Viterbi decoding of page-load journeys over a website's link graph."""

    def __init__(self, website: Website, self_transition: float = 0.05, smoothing: float = 1e-3) -> None:
        if not 0.0 <= self_transition < 1.0:
            raise ValueError("self_transition must be in [0, 1)")
        if smoothing <= 0:
            raise ValueError("smoothing must be positive")
        self.website = website
        self.states: List[str] = list(website.page_ids)
        if not self.states:
            raise ValueError("website has no pages")
        self._state_index = {page: index for index, page in enumerate(self.states)}
        self.self_transition = float(self_transition)
        self.smoothing = float(smoothing)
        self._transition = self._build_transition_matrix()
        self._initial = np.full(len(self.states), 1.0 / len(self.states))

    # ------------------------------------------------------------------ model
    def _build_transition_matrix(self) -> np.ndarray:
        n = len(self.states)
        matrix = np.full((n, n), self.smoothing)
        for src in self.states:
            src_index = self._state_index[src]
            links = [dst for dst in self.website.outgoing_links(src) if dst in self._state_index]
            matrix[src_index, src_index] += self.self_transition
            if links:
                share = (1.0 - self.self_transition) / len(links)
                for dst in links:
                    matrix[src_index, self._state_index[dst]] += share
            else:
                # Dead-end pages: the user may jump anywhere (e.g. via search).
                matrix[src_index, :] += (1.0 - self.self_transition) / n
        return matrix / matrix.sum(axis=1, keepdims=True)

    @property
    def transition_matrix(self) -> np.ndarray:
        return self._transition.copy()

    # ----------------------------------------------------------------- decode
    def decode(self, emission_scores: np.ndarray) -> List[str]:
        """Most likely page sequence for per-load emission scores.

        ``emission_scores`` has shape ``(journey_length, n_pages)`` where
        each row holds the per-page scores (e.g. classifier probabilities)
        of one observed page load, in the order of :attr:`states`.
        """
        scores = np.asarray(emission_scores, dtype=np.float64)
        if scores.ndim != 2 or scores.shape[1] != len(self.states):
            raise ValueError(
                f"emission_scores must have shape (T, {len(self.states)}), got {scores.shape}"
            )
        scores = np.clip(scores, 1e-12, None)
        scores = scores / scores.sum(axis=1, keepdims=True)

        log_transition = np.log(self._transition)
        log_emission = np.log(scores)
        steps, n = scores.shape
        viterbi = np.full((steps, n), -np.inf)
        backpointer = np.zeros((steps, n), dtype=np.int64)
        viterbi[0] = np.log(self._initial) + log_emission[0]
        for t in range(1, steps):
            candidate = viterbi[t - 1][:, None] + log_transition
            backpointer[t] = candidate.argmax(axis=0)
            viterbi[t] = candidate.max(axis=0) + log_emission[t]

        path = np.zeros(steps, dtype=np.int64)
        path[-1] = int(viterbi[-1].argmax())
        for t in range(steps - 2, -1, -1):
            path[t] = backpointer[t + 1, path[t + 1]]
        return [self.states[index] for index in path]

    def journey_accuracy(self, emission_scores: np.ndarray, true_pages: Sequence[str]) -> float:
        """Fraction of journey steps whose decoded page matches the truth."""
        decoded = self.decode(emission_scores)
        if len(decoded) != len(true_pages):
            raise ValueError("emission scores and true pages must have the same length")
        hits = sum(1 for predicted, actual in zip(decoded, true_pages) if predicted == actual)
        return hits / len(decoded)

    # ------------------------------------------------------------- simulation
    def sample_journey(self, length: int, rng: np.random.Generator, start: Optional[str] = None) -> List[str]:
        """Sample a browsing journey by walking the link graph."""
        if length <= 0:
            raise ValueError("length must be positive")
        current = start if start is not None else self.states[int(rng.integers(0, len(self.states)))]
        if current not in self._state_index:
            raise KeyError(f"unknown start page {current!r}")
        journey = [current]
        for _ in range(length - 1):
            row = self._transition[self._state_index[current]]
            current = self.states[int(rng.choice(len(self.states), p=row))]
            journey.append(current)
        return journey
