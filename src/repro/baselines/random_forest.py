"""A from-scratch random forest (CART trees, Gini impurity).

k-fingerprinting builds on a random forest; with no scikit-learn available
offline the forest is implemented here.  The implementation favours clarity
over raw speed but is vectorised enough to handle the reproduction's
dataset sizes comfortably.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Tuple

import numpy as np


@dataclass
class _Node:
    """One node of a decision tree (leaf when ``feature`` is None)."""

    feature: Optional[int] = None
    threshold: float = 0.0
    left: Optional["_Node"] = None
    right: Optional["_Node"] = None
    class_counts: Optional[np.ndarray] = None
    leaf_id: int = -1


class DecisionTree:
    """A CART classification tree with Gini-impurity splits."""

    def __init__(
        self,
        max_depth: int = 12,
        min_samples_leaf: int = 1,
        max_features: Optional[int] = None,
        rng: Optional[np.random.Generator] = None,
    ) -> None:
        if max_depth <= 0:
            raise ValueError("max_depth must be positive")
        if min_samples_leaf <= 0:
            raise ValueError("min_samples_leaf must be positive")
        self.max_depth = int(max_depth)
        self.min_samples_leaf = int(min_samples_leaf)
        self.max_features = max_features
        self._rng = rng if rng is not None else np.random.default_rng(0)
        self._root: Optional[_Node] = None
        self._n_classes = 0
        self.n_leaves = 0

    # ------------------------------------------------------------------- fit
    def fit(self, features: np.ndarray, labels: np.ndarray) -> "DecisionTree":
        features = np.asarray(features, dtype=np.float64)
        labels = np.asarray(labels, dtype=np.int64)
        if features.ndim != 2 or features.shape[0] != labels.shape[0]:
            raise ValueError("features must be (n, d) aligned with labels")
        if features.shape[0] == 0:
            raise ValueError("cannot fit on an empty dataset")
        self._n_classes = int(labels.max()) + 1
        self.n_leaves = 0
        self._root = self._grow(features, labels, depth=0)
        return self

    def _grow(self, features: np.ndarray, labels: np.ndarray, depth: int) -> _Node:
        counts = np.bincount(labels, minlength=self._n_classes).astype(np.float64)
        node = _Node(class_counts=counts)
        if (
            depth >= self.max_depth
            or labels.shape[0] < 2 * self.min_samples_leaf
            or np.count_nonzero(counts) <= 1
        ):
            node.leaf_id = self.n_leaves
            self.n_leaves += 1
            return node

        split = self._best_split(features, labels)
        if split is None:
            node.leaf_id = self.n_leaves
            self.n_leaves += 1
            return node

        feature, threshold = split
        mask = features[:, feature] <= threshold
        node.feature = feature
        node.threshold = threshold
        node.class_counts = None
        node.left = self._grow(features[mask], labels[mask], depth + 1)
        node.right = self._grow(features[~mask], labels[~mask], depth + 1)
        return node

    def _best_split(self, features: np.ndarray, labels: np.ndarray) -> Optional[Tuple[int, float]]:
        n_samples, n_features = features.shape
        k = self.max_features or n_features
        k = min(k, n_features)
        candidate_features = self._rng.choice(n_features, size=k, replace=False)
        best_gini = np.inf
        best: Optional[Tuple[int, float]] = None
        for feature in candidate_features:
            column = features[:, feature]
            order = np.argsort(column, kind="stable")
            sorted_column = column[order]
            sorted_labels = labels[order]
            # candidate thresholds: midpoints between distinct consecutive values
            distinct = np.flatnonzero(np.diff(sorted_column) > 1e-12)
            if distinct.size == 0:
                continue
            one_hot = np.zeros((n_samples, self._n_classes))
            one_hot[np.arange(n_samples), sorted_labels] = 1.0
            left_counts = np.cumsum(one_hot, axis=0)
            total_counts = left_counts[-1]
            for cut in distinct:
                n_left = cut + 1
                n_right = n_samples - n_left
                if n_left < self.min_samples_leaf or n_right < self.min_samples_leaf:
                    continue
                left = left_counts[cut]
                right = total_counts - left
                gini_left = 1.0 - np.sum((left / n_left) ** 2)
                gini_right = 1.0 - np.sum((right / n_right) ** 2)
                weighted = (n_left * gini_left + n_right * gini_right) / n_samples
                if weighted < best_gini - 1e-12:
                    best_gini = weighted
                    threshold = (sorted_column[cut] + sorted_column[cut + 1]) / 2.0
                    best = (int(feature), float(threshold))
        return best

    # --------------------------------------------------------------- predict
    def _leaf_for(self, row: np.ndarray) -> _Node:
        if self._root is None:
            raise RuntimeError("tree has not been fitted")
        node = self._root
        while node.feature is not None:
            node = node.left if row[node.feature] <= node.threshold else node.right
        return node

    def predict_proba(self, features: np.ndarray) -> np.ndarray:
        features = np.atleast_2d(np.asarray(features, dtype=np.float64))
        probabilities = np.zeros((features.shape[0], self._n_classes))
        for index, row in enumerate(features):
            counts = self._leaf_for(row).class_counts
            probabilities[index] = counts / counts.sum()
        return probabilities

    def predict(self, features: np.ndarray) -> np.ndarray:
        return self.predict_proba(features).argmax(axis=1)

    def apply(self, features: np.ndarray) -> np.ndarray:
        """Leaf index reached by each sample (used by k-fingerprinting)."""
        features = np.atleast_2d(np.asarray(features, dtype=np.float64))
        return np.array([self._leaf_for(row).leaf_id for row in features], dtype=np.int64)


class RandomForest:
    """Bagged ensemble of :class:`DecisionTree` with feature subsampling."""

    def __init__(
        self,
        n_trees: int = 50,
        max_depth: int = 12,
        min_samples_leaf: int = 1,
        max_features: Optional[int] = None,
        seed: int = 0,
    ) -> None:
        if n_trees <= 0:
            raise ValueError("n_trees must be positive")
        self.n_trees = int(n_trees)
        self.max_depth = int(max_depth)
        self.min_samples_leaf = int(min_samples_leaf)
        self.max_features = max_features
        self.seed = int(seed)
        self.trees: List[DecisionTree] = []
        self._n_classes = 0

    def fit(self, features: np.ndarray, labels: np.ndarray) -> "RandomForest":
        features = np.asarray(features, dtype=np.float64)
        labels = np.asarray(labels, dtype=np.int64)
        if features.shape[0] != labels.shape[0]:
            raise ValueError("features and labels must be aligned")
        rng = np.random.default_rng(self.seed)
        self._n_classes = int(labels.max()) + 1
        n_samples, n_features = features.shape
        max_features = self.max_features or max(1, int(np.sqrt(n_features)))
        self.trees = []
        for _ in range(self.n_trees):
            bootstrap = rng.integers(0, n_samples, size=n_samples)
            tree = DecisionTree(
                max_depth=self.max_depth,
                min_samples_leaf=self.min_samples_leaf,
                max_features=max_features,
                rng=np.random.default_rng(rng.integers(0, 2**31 - 1)),
            )
            tree.fit(features[bootstrap], labels[bootstrap])
            self.trees.append(tree)
        return self

    def predict_proba(self, features: np.ndarray) -> np.ndarray:
        if not self.trees:
            raise RuntimeError("forest has not been fitted")
        features = np.atleast_2d(np.asarray(features, dtype=np.float64))
        probabilities = np.zeros((features.shape[0], self._n_classes))
        for tree in self.trees:
            tree_probabilities = tree.predict_proba(features)
            # Trees may have seen fewer classes in their bootstrap sample.
            probabilities[:, : tree_probabilities.shape[1]] += tree_probabilities
        return probabilities / len(self.trees)

    def predict(self, features: np.ndarray) -> np.ndarray:
        return self.predict_proba(features).argmax(axis=1)

    def apply(self, features: np.ndarray) -> np.ndarray:
        """Leaf-index fingerprint of each sample: shape ``(n, n_trees)``."""
        if not self.trees:
            raise RuntimeError("forest has not been fitted")
        features = np.atleast_2d(np.asarray(features, dtype=np.float64))
        return np.stack([tree.apply(features) for tree in self.trees], axis=1)
