"""Bissias et al. (PET 2005): similarity-profile traffic classification.

The earliest of the compared systems: each class is represented by an
averaged profile of its traces and unknown traces are matched to the class
whose profile they correlate with best.  Low complexity, no retraining —
but, as Table III notes, its accuracy on moderate and large class sets has
never been demonstrated; the reproduction makes that comparison measurable.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

import numpy as np

from repro.traces.dataset import TraceDataset


class CrossCorrelationAttack:
    """Classify traces by correlation against per-class mean profiles."""

    def __init__(self) -> None:
        self._profiles: Optional[np.ndarray] = None
        self._class_names: List[str] = []

    def fit(self, dataset: TraceDataset) -> "CrossCorrelationAttack":
        profiles = np.zeros((dataset.n_classes, dataset.n_sequences * dataset.sequence_length))
        flattened = dataset.data.reshape(len(dataset), -1)
        for class_id in range(dataset.n_classes):
            mask = dataset.labels == class_id
            if mask.any():
                profiles[class_id] = flattened[mask].mean(axis=0)
        self._profiles = profiles
        self._class_names = list(dataset.class_names)
        return self

    @property
    def fitted(self) -> bool:
        return self._profiles is not None

    def rank_labels(self, dataset: TraceDataset) -> List[List[str]]:
        if not self.fitted:
            raise RuntimeError("attack has not been fitted")
        flattened = dataset.data.reshape(len(dataset), -1)
        rankings: List[List[str]] = []
        for row in flattened:
            scores = self._correlations(row)
            order = np.argsort(-scores, kind="stable")
            rankings.append([self._class_names[i] for i in order])
        return rankings

    def _correlations(self, row: np.ndarray) -> np.ndarray:
        profiles = self._profiles
        row_centered = row - row.mean()
        profiles_centered = profiles - profiles.mean(axis=1, keepdims=True)
        numerator = profiles_centered @ row_centered
        denominator = np.linalg.norm(profiles_centered, axis=1) * np.linalg.norm(row_centered)
        denominator = np.where(denominator == 0, 1.0, denominator)
        return numerator / denominator

    def topn_accuracy(self, dataset: TraceDataset, ns: Sequence[int] = (1, 3, 5, 10)) -> Dict[int, float]:
        rankings = self.rank_labels(dataset)
        true_names = [dataset.label_name(label) for label in dataset.labels]
        return {
            int(n): sum(1 for ranked, name in zip(rankings, true_names) if name in ranked[:n]) / len(true_names)
            for n in ns
        }
