"""TLS protocol versions considered by the paper (1.2 and 1.3)."""

from __future__ import annotations

import enum


class TLSVersion(enum.Enum):
    """Supported TLS protocol versions.

    The paper's Wiki19000 dataset uses TLS 1.2 (plus a 500-class TLS 1.3
    slice) and the Github500 dataset uses TLS 1.3; Experiment 3 studies how
    a model trained on one version transfers to the other.
    """

    TLS_1_2 = "TLSv1.2"
    TLS_1_3 = "TLSv1.3"

    @property
    def record_header_size(self) -> int:
        """TLSPlaintext/TLSCiphertext header: type + version + length."""
        return 5

    @property
    def supports_record_padding(self) -> bool:
        """Only TLS 1.3 has protocol-level record padding (RFC 8446 §5.4)."""
        return self is TLSVersion.TLS_1_3

    @property
    def handshake_round_trips(self) -> int:
        """Full handshake round trips (TLS 1.3 is a 1-RTT handshake)."""
        return 2 if self is TLSVersion.TLS_1_2 else 1

    def __str__(self) -> str:
        return self.value
