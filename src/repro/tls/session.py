"""A TLS session between the client and one content server.

The session glues the handshake, record layer and transmission channel
together: it emits the handshake flights, then turns each HTTP
request/response exchange into record wire sizes and hands them to the
channel, which produces the packets the sniffer observes.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

import numpy as np

from repro.net.channel import TransmissionChannel
from repro.tls.ciphersuites import CipherSuite, default_suite
from repro.tls.handshake import handshake_flights
from repro.tls.padding import NoRecordPadding, RecordPaddingPolicy
from repro.tls.record import RecordLayer
from repro.tls.version import TLSVersion


@dataclass
class TLSSession:
    """One client<->server TLS connection used during a page load."""

    channel: TransmissionChannel
    version: TLSVersion = TLSVersion.TLS_1_2
    ciphersuite: Optional[CipherSuite] = None
    padding_policy: Optional[RecordPaddingPolicy] = None
    certificate_chain_size: int = 3200
    session_resumption: bool = False

    def __post_init__(self) -> None:
        if self.ciphersuite is None:
            self.ciphersuite = default_suite(self.version)
        if self.ciphersuite.version is not self.version:
            raise ValueError(
                f"ciphersuite {self.ciphersuite.name} is for {self.ciphersuite.version}, "
                f"session negotiated {self.version}"
            )
        if self.padding_policy is None:
            self.padding_policy = NoRecordPadding()
        self._record_layer = RecordLayer(self.ciphersuite, self.padding_policy)
        self._established = False

    @property
    def established(self) -> bool:
        return self._established

    def handshake(self, start_time: float, rng: np.random.Generator) -> float:
        """Perform the handshake; returns the completion time."""
        if self._established:
            raise RuntimeError("handshake already completed")
        now = float(start_time)
        for flight in handshake_flights(
            self.version,
            certificate_chain_size=self.certificate_chain_size,
            session_resumption=self.session_resumption,
            rng=rng,
        ):
            now = self.channel.transmit(
                [flight.size], from_client=flight.from_client, start_time=now, rng=rng
            )
        self._established = True
        return now

    def exchange(
        self,
        request_bytes: int,
        response_bytes: int,
        start_time: float,
        rng: np.random.Generator,
        *,
        response_chunks: int = 1,
    ) -> float:
        """One HTTP request/response over the established session.

        ``response_chunks`` splits the response into that many separate
        application writes, modelling chunked transfer encoding / streamed
        bodies.  Each chunk is fragmented and encrypted independently, which
        changes the record-size pattern but not the total volume — exactly
        the intra-class variability the paper observes between repeated
        loads of the same page.
        """
        if not self._established:
            raise RuntimeError("exchange before handshake")
        if response_chunks <= 0:
            raise ValueError("response_chunks must be positive")
        now = self.channel.transmit(
            self._record_layer.wire_sizes(request_bytes, rng),
            from_client=True,
            start_time=start_time,
            rng=rng,
        )
        chunk_sizes = self._split_chunks(response_bytes, response_chunks, rng)
        for chunk in chunk_sizes:
            now = self.channel.transmit(
                self._record_layer.wire_sizes(chunk, rng),
                from_client=False,
                start_time=now,
                rng=rng,
            )
        return now

    @staticmethod
    def _split_chunks(total: int, chunks: int, rng: np.random.Generator) -> list:
        """Split ``total`` bytes into ``chunks`` positive parts (or fewer)."""
        if total < 0:
            raise ValueError("response_bytes must be non-negative")
        if total == 0:
            return [0]
        chunks = min(chunks, total)
        if chunks == 1:
            return [total]
        # Random proportions keep repeated loads of the same page from
        # producing byte-identical record patterns.
        weights = rng.random(chunks) + 0.1
        proportions = weights / weights.sum()
        sizes = np.maximum(1, np.floor(proportions * total).astype(int))
        # Fix rounding so the chunk sizes sum exactly to the payload.
        sizes[-1] += total - int(sizes.sum())
        if sizes[-1] <= 0:
            sizes = np.array([total])
        return [int(s) for s in sizes]
