"""The TLS record layer: fragmentation and ciphertext expansion.

Application data handed to the record layer is fragmented into records of
at most ``MAX_PLAINTEXT_FRAGMENT`` (2^14) bytes, each record is expanded by
the ciphersuite's nonce/tag overhead plus the 5-byte record header, and —
for TLS 1.3 — an optional padding policy may inflate the inner plaintext.
The output is the list of on-the-wire record sizes, which is all a passive
adversary can observe.
"""

from __future__ import annotations

from typing import List, Optional

import numpy as np

MAX_PLAINTEXT_FRAGMENT = 2**14


class RecordLayer:
    """Turns application-data byte counts into wire-visible record sizes."""

    def __init__(self, ciphersuite, padding_policy=None) -> None:
        # Imported lazily to avoid a circular import with tls.padding.
        from repro.tls.padding import NoRecordPadding, RecordPaddingPolicy

        if padding_policy is not None and not isinstance(padding_policy, RecordPaddingPolicy):
            raise TypeError("padding_policy must be a RecordPaddingPolicy")
        if padding_policy is not None and not ciphersuite.version.supports_record_padding:
            if not isinstance(padding_policy, NoRecordPadding):
                raise ValueError(
                    f"{ciphersuite.version} does not support record padding; "
                    "use NoRecordPadding or a TLS 1.3 suite"
                )
        self.ciphersuite = ciphersuite
        self.padding_policy = padding_policy if padding_policy is not None else NoRecordPadding()

    def fragment(self, application_bytes: int) -> List[int]:
        """Split an application payload into plaintext fragment sizes."""
        if application_bytes < 0:
            raise ValueError("application_bytes must be non-negative")
        if application_bytes == 0:
            return []
        fragments = []
        remaining = application_bytes
        while remaining > 0:
            fragment = min(MAX_PLAINTEXT_FRAGMENT, remaining)
            fragments.append(fragment)
            remaining -= fragment
        return fragments

    def wire_sizes(
        self, application_bytes: int, rng: Optional[np.random.Generator] = None
    ) -> List[int]:
        """On-the-wire sizes (header + ciphertext) of the records produced."""
        rng = rng if rng is not None else np.random.default_rng(0)
        header = self.ciphersuite.version.record_header_size
        sizes = []
        for fragment in self.fragment(application_bytes):
            padding = self.padding_policy.padding_for(fragment, rng)
            # Padding may not push the inner plaintext past the fragment cap.
            padding = min(padding, MAX_PLAINTEXT_FRAGMENT - fragment)
            ciphertext = self.ciphersuite.ciphertext_size(fragment, padding)
            sizes.append(header + ciphertext)
        return sizes

    def total_wire_bytes(self, application_bytes: int, rng: Optional[np.random.Generator] = None) -> int:
        """Convenience wrapper summing :meth:`wire_sizes`."""
        return sum(self.wire_sizes(application_bytes, rng))
