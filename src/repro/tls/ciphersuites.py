"""Ciphersuites and their per-record ciphertext expansion.

Only the properties that influence observable record lengths are modelled:
the explicit per-record nonce (TLS 1.2 GCM), the AEAD authentication tag,
and the single content-type byte appended to TLS 1.3 inner plaintexts.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.tls.version import TLSVersion


@dataclass(frozen=True)
class CipherSuite:
    """A TLS ciphersuite reduced to its length-relevant parameters."""

    name: str
    version: TLSVersion
    explicit_nonce_size: int
    tag_size: int

    def __post_init__(self) -> None:
        if self.explicit_nonce_size < 0 or self.tag_size < 0:
            raise ValueError("ciphersuite overheads must be non-negative")

    def ciphertext_size(self, plaintext_size: int, padding: int = 0) -> int:
        """Wire size of one record's ciphertext fragment (without header).

        ``padding`` is the number of TLS 1.3 padding bytes added to the
        inner plaintext; it must be zero for TLS 1.2 suites.
        """
        if plaintext_size < 0:
            raise ValueError("plaintext size must be non-negative")
        if padding < 0:
            raise ValueError("padding must be non-negative")
        if padding and not self.version.supports_record_padding:
            raise ValueError(f"{self.version} does not support record padding")
        inner = plaintext_size + padding
        if self.version is TLSVersion.TLS_1_3:
            # TLSInnerPlaintext carries one content-type byte.
            inner += 1
        return self.explicit_nonce_size + inner + self.tag_size


AES_128_GCM_TLS12 = CipherSuite(
    name="TLS_ECDHE_RSA_WITH_AES_128_GCM_SHA256",
    version=TLSVersion.TLS_1_2,
    explicit_nonce_size=8,
    tag_size=16,
)

AES_128_GCM_TLS13 = CipherSuite(
    name="TLS_AES_128_GCM_SHA256",
    version=TLSVersion.TLS_1_3,
    explicit_nonce_size=0,
    tag_size=16,
)

CHACHA20_POLY1305_TLS13 = CipherSuite(
    name="TLS_CHACHA20_POLY1305_SHA256",
    version=TLSVersion.TLS_1_3,
    explicit_nonce_size=0,
    tag_size=16,
)


def default_suite(version: TLSVersion) -> CipherSuite:
    """The default ciphersuite used by the simulated servers per version."""
    if version is TLSVersion.TLS_1_2:
        return AES_128_GCM_TLS12
    return AES_128_GCM_TLS13
