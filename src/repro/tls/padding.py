"""TLS 1.3 record-padding policies.

RFC 8446 makes record padding available but explicitly leaves the policy to
the implementation ("Selecting a padding policy ... is beyond the scope of
this specification"), which is the gap the paper's countermeasure analysis
targets.  Each policy answers a single question: given a plaintext fragment
of N bytes, how many padding bytes should be added to this record?

Trace-level defences (padding whole page loads, anonymity sets) live in
:mod:`repro.defences`; the classes here operate record-by-record inside the
record layer.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.tls.record import MAX_PLAINTEXT_FRAGMENT


class RecordPaddingPolicy:
    """Interface for per-record padding policies."""

    def padding_for(self, plaintext_size: int, rng: Optional[np.random.Generator] = None) -> int:
        """Number of padding bytes to append to a fragment of this size."""
        raise NotImplementedError

    @property
    def name(self) -> str:
        return type(self).__name__


class NoRecordPadding(RecordPaddingPolicy):
    """The default policy: no padding at all (TLS 1.2 behaviour)."""

    def padding_for(self, plaintext_size: int, rng: Optional[np.random.Generator] = None) -> int:
        self._validate(plaintext_size)
        return 0

    @staticmethod
    def _validate(plaintext_size: int) -> None:
        if plaintext_size < 0:
            raise ValueError("plaintext size must be non-negative")


class PadToBlock(RecordPaddingPolicy):
    """Pad every record up to the next multiple of ``block_size`` bytes."""

    def __init__(self, block_size: int = 512) -> None:
        if block_size <= 0:
            raise ValueError("block_size must be positive")
        self.block_size = int(block_size)

    def padding_for(self, plaintext_size: int, rng: Optional[np.random.Generator] = None) -> int:
        NoRecordPadding._validate(plaintext_size)
        remainder = plaintext_size % self.block_size
        if remainder == 0 and plaintext_size > 0:
            return 0
        return self.block_size - remainder

    @property
    def name(self) -> str:
        return f"PadToBlock({self.block_size})"


class PadToMaximum(RecordPaddingPolicy):
    """Pad every record to the maximum TLS plaintext fragment size.

    This is the strongest per-record policy: all records look identical in
    size, leaving only the record *count* as signal.
    """

    def padding_for(self, plaintext_size: int, rng: Optional[np.random.Generator] = None) -> int:
        NoRecordPadding._validate(plaintext_size)
        if plaintext_size > MAX_PLAINTEXT_FRAGMENT:
            raise ValueError("plaintext fragment exceeds the TLS maximum")
        return MAX_PLAINTEXT_FRAGMENT - plaintext_size

    @property
    def name(self) -> str:
        return "PadToMaximum"


class RandomRecordPadding(RecordPaddingPolicy):
    """Append a uniformly random amount of padding up to ``max_padding``.

    Pironti et al. showed random-length padding to be a weak defence; it is
    included so the reproduction can confirm that finding against the
    adaptive adversary.
    """

    def __init__(self, max_padding: int = 256) -> None:
        if max_padding <= 0:
            raise ValueError("max_padding must be positive")
        self.max_padding = int(max_padding)

    def padding_for(self, plaintext_size: int, rng: Optional[np.random.Generator] = None) -> int:
        NoRecordPadding._validate(plaintext_size)
        rng = rng if rng is not None else np.random.default_rng(0)
        return int(rng.integers(0, self.max_padding + 1))

    @property
    def name(self) -> str:
        return f"RandomRecordPadding({self.max_padding})"
