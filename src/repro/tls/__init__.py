"""TLS 1.2 / 1.3 record-layer substrate.

The paper's side-channel is the sequence of ciphertext lengths a passive
observer sees on a TLS connection.  This package models the parts of the
protocol that shape those lengths: the handshake flights (whose sizes
differ between TLS 1.2 and 1.3), the record layer (fragmentation into
records of at most 2^14 bytes, per-record AEAD/MAC expansion and headers),
and TLS 1.3's record-padding hook (RFC 8446 §5.4) which the countermeasure
experiments of Section VII exercise.
"""

from repro.tls.version import TLSVersion
from repro.tls.ciphersuites import CipherSuite, AES_128_GCM_TLS12, AES_128_GCM_TLS13, CHACHA20_POLY1305_TLS13
from repro.tls.handshake import HandshakeFlight, handshake_flights
from repro.tls.padding import (
    RecordPaddingPolicy,
    NoRecordPadding,
    PadToBlock,
    PadToMaximum,
    RandomRecordPadding,
)
from repro.tls.record import RecordLayer, MAX_PLAINTEXT_FRAGMENT
from repro.tls.session import TLSSession

__all__ = [
    "TLSVersion",
    "CipherSuite",
    "AES_128_GCM_TLS12",
    "AES_128_GCM_TLS13",
    "CHACHA20_POLY1305_TLS13",
    "HandshakeFlight",
    "handshake_flights",
    "RecordPaddingPolicy",
    "NoRecordPadding",
    "PadToBlock",
    "PadToMaximum",
    "RandomRecordPadding",
    "RecordLayer",
    "MAX_PLAINTEXT_FRAGMENT",
    "TLSSession",
]
