"""Handshake flights and their approximate wire sizes.

A passive adversary sees the handshake before any application data, and the
handshake's shape differs between TLS 1.2 (2-RTT, certificate always in the
clear) and TLS 1.3 (1-RTT, certificate encrypted).  The sizes below are
representative of real deployments (certificate chains of a few kilobytes,
small hello messages with moderate jitter from extensions and key shares);
the per-server certificate size varies deterministically with the server so
that different servers have mildly different handshake footprints, as they
do in practice.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

import numpy as np

from repro.tls.version import TLSVersion


@dataclass(frozen=True)
class HandshakeFlight:
    """One flight of handshake messages travelling in a single direction."""

    from_client: bool
    size: int
    description: str

    def __post_init__(self) -> None:
        if self.size <= 0:
            raise ValueError("handshake flight size must be positive")


def handshake_flights(
    version: TLSVersion,
    *,
    certificate_chain_size: int = 3200,
    session_resumption: bool = False,
    rng: Optional[np.random.Generator] = None,
) -> List[HandshakeFlight]:
    """Return the ordered handshake flights for ``version``.

    ``certificate_chain_size`` lets each simulated server present a chain of
    its own size.  ``session_resumption`` models abbreviated handshakes
    (session tickets / PSK), which shrink the server's first flight — some
    of the paper's traces include resumed connections to media servers.
    """
    if certificate_chain_size <= 0:
        raise ValueError("certificate_chain_size must be positive")
    rng = rng if rng is not None else np.random.default_rng(0)
    # Small jitter models varying extension lists (SNI length, ALPN, etc.).
    jitter = int(rng.integers(0, 32))

    if version is TLSVersion.TLS_1_2:
        if session_resumption:
            return [
                HandshakeFlight(True, 250 + jitter, "ClientHello (resumption)"),
                HandshakeFlight(False, 180 + jitter, "ServerHello + ChangeCipherSpec + Finished"),
                HandshakeFlight(True, 75, "ChangeCipherSpec + Finished"),
            ]
        return [
            HandshakeFlight(True, 280 + jitter, "ClientHello"),
            HandshakeFlight(
                False,
                90 + certificate_chain_size + 330 + jitter,
                "ServerHello + Certificate + ServerKeyExchange + ServerHelloDone",
            ),
            HandshakeFlight(True, 130, "ClientKeyExchange + ChangeCipherSpec + Finished"),
            HandshakeFlight(False, 60, "ChangeCipherSpec + Finished + NewSessionTicket"),
        ]

    if session_resumption:
        return [
            HandshakeFlight(True, 320 + jitter, "ClientHello (PSK + key share)"),
            HandshakeFlight(False, 150 + jitter, "ServerHello + EncryptedExtensions + Finished"),
            HandshakeFlight(True, 80, "Finished"),
        ]
    return [
        HandshakeFlight(True, 330 + jitter, "ClientHello (key share)"),
        HandshakeFlight(
            False,
            128 + certificate_chain_size + 360 + jitter,
            "ServerHello + EncryptedExtensions + Certificate + CertificateVerify + Finished",
        ),
        HandshakeFlight(True, 80, "Finished"),
        HandshakeFlight(False, 2 * 250, "NewSessionTicket x2"),
    ]


def handshake_bytes(version: TLSVersion, **kwargs) -> int:
    """Total handshake bytes exchanged (both directions)."""
    return sum(flight.size for flight in handshake_flights(version, **kwargs))
