"""Websites: collections of themed pages served from named servers."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Sequence

import networkx as nx

from repro.net.address import IPAddress
from repro.tls.version import TLSVersion
from repro.web.page import WebPage


@dataclass(frozen=True)
class Server:
    """A content server of a website.

    ``role`` is the logical name resources refer to ("text", "media",
    "cdn-0", ...); ``pool`` groups interchangeable servers behind a load
    balancer — each page load picks one member of the pool, which is how
    the Github-like site gets its varying set of involved IPs.
    """

    role: str
    ip: IPAddress
    pool: str = ""
    certificate_chain_size: int = 3200

    def __post_init__(self) -> None:
        if not self.role:
            raise ValueError("server role must be non-empty")
        if self.certificate_chain_size <= 0:
            raise ValueError("certificate_chain_size must be positive")


class Website:
    """A website: pages sharing a theme, plus the servers that host them."""

    def __init__(
        self,
        name: str,
        tls_version: TLSVersion,
        servers: Sequence[Server],
        pages: Optional[Iterable[WebPage]] = None,
    ) -> None:
        if not name:
            raise ValueError("website name must be non-empty")
        if not servers:
            raise ValueError("a website needs at least one server")
        self.name = name
        self.tls_version = tls_version
        self._servers: Dict[str, Server] = {}
        for server in servers:
            if server.role in self._servers:
                raise ValueError(f"duplicate server role {server.role!r}")
            self._servers[server.role] = server
        self._pages: Dict[str, WebPage] = {}
        self.link_graph = nx.DiGraph()
        for page in pages or []:
            self.add_page(page)

    # ------------------------------------------------------------------ pages
    def add_page(self, page: WebPage) -> None:
        if page.page_id in self._pages:
            raise ValueError(f"duplicate page id {page.page_id!r}")
        missing = {r.server_role for r in page.resources} - set(self._servers)
        if missing:
            raise ValueError(
                f"page {page.page_id!r} references unknown server roles: {sorted(missing)}"
            )
        self._pages[page.page_id] = page
        self.link_graph.add_node(page.page_id)

    def update_page(self, page: WebPage) -> None:
        """Replace an existing page with a newer version (content update)."""
        if page.page_id not in self._pages:
            raise KeyError(f"unknown page id {page.page_id!r}")
        self._pages[page.page_id] = page

    def remove_page(self, page_id: str) -> None:
        if page_id not in self._pages:
            raise KeyError(f"unknown page id {page_id!r}")
        del self._pages[page_id]
        self.link_graph.remove_node(page_id)

    def get_page(self, page_id: str) -> WebPage:
        try:
            return self._pages[page_id]
        except KeyError:
            raise KeyError(f"unknown page id {page_id!r}") from None

    @property
    def page_ids(self) -> List[str]:
        return list(self._pages)

    @property
    def pages(self) -> List[WebPage]:
        return list(self._pages.values())

    def __len__(self) -> int:
        return len(self._pages)

    def __contains__(self, page_id: str) -> bool:
        return page_id in self._pages

    # ---------------------------------------------------------------- servers
    @property
    def servers(self) -> List[Server]:
        return list(self._servers.values())

    def server_for_role(self, role: str) -> Server:
        try:
            return self._servers[role]
        except KeyError:
            raise KeyError(f"unknown server role {role!r}") from None

    def server_ips(self) -> List[IPAddress]:
        return [server.ip for server in self._servers.values()]

    # ------------------------------------------------------------- link graph
    def add_link(self, src_page: str, dst_page: str) -> None:
        """Add a hyperlink between two pages (used by the HMM baseline)."""
        for page_id in (src_page, dst_page):
            if page_id not in self._pages:
                raise KeyError(f"unknown page id {page_id!r}")
        self.link_graph.add_edge(src_page, dst_page)

    def outgoing_links(self, page_id: str) -> List[str]:
        if page_id not in self._pages:
            raise KeyError(f"unknown page id {page_id!r}")
        return list(self.link_graph.successors(page_id))

    # -------------------------------------------------------------- statistics
    def mean_page_bytes(self) -> float:
        if not self._pages:
            return 0.0
        return float(sum(p.total_bytes for p in self._pages.values()) / len(self._pages))

    def max_page_bytes(self) -> int:
        if not self._pages:
            return 0
        return max(p.total_bytes for p in self._pages.values())
