"""Web pages: a shared template plus page-specific content resources."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Tuple

from repro.web.resource import Resource, ResourceKind


@dataclass
class WebPage:
    """A single webpage of a website.

    ``template_resources`` are shared with every other page of the site
    (stylesheets, scripts, logo images); ``content_resources`` are unique to
    this page (the article text, the page's own images).  This split
    directly models the "shared resources" property the paper highlights as
    what makes *webpage* fingerprinting harder than *website*
    fingerprinting.
    """

    page_id: str
    url: str
    template_resources: List[Resource] = field(default_factory=list)
    content_resources: List[Resource] = field(default_factory=list)
    version: int = 0

    def __post_init__(self) -> None:
        if not self.page_id:
            raise ValueError("page_id must be non-empty")
        if not self.url:
            raise ValueError("url must be non-empty")

    @property
    def resources(self) -> List[Resource]:
        """All resources fetched when loading the page (template first)."""
        return list(self.template_resources) + list(self.content_resources)

    @property
    def total_bytes(self) -> int:
        return sum(r.size for r in self.resources)

    @property
    def unique_bytes(self) -> int:
        """Bytes unique to this page (excludes the shared template)."""
        return sum(r.size for r in self.content_resources)

    @property
    def shared_fraction(self) -> float:
        """Fraction of the page volume that is shared template content."""
        total = self.total_bytes
        if total == 0:
            return 0.0
        return 1.0 - self.unique_bytes / total

    def bytes_by_server(self) -> Dict[str, int]:
        """Total response bytes grouped by server role."""
        totals: Dict[str, int] = {}
        for resource in self.resources:
            totals[resource.server_role] = totals.get(resource.server_role, 0) + resource.size
        return totals

    def bytes_by_kind(self) -> Dict[ResourceKind, int]:
        totals: Dict[ResourceKind, int] = {}
        for resource in self.resources:
            totals[resource.kind] = totals.get(resource.kind, 0) + resource.size
        return totals

    def with_content(self, content_resources: List[Resource]) -> "WebPage":
        """A new version of the page with replaced content resources."""
        return WebPage(
            page_id=self.page_id,
            url=self.url,
            template_resources=list(self.template_resources),
            content_resources=list(content_resources),
            version=self.version + 1,
        )

    def signature(self) -> Tuple[Tuple[str, int], ...]:
        """A deterministic (server_role, size) fingerprint of the page.

        Useful in tests to check that two pages differ (or that an update
        really changed the page).
        """
        return tuple(sorted((r.server_role, r.size) for r in self.resources))
