"""Synthetic web substrate.

The paper crawls live Wikipedia and Github pages; this package builds the
equivalent synthetic targets: websites whose pages share an HTML theme but
carry page-specific content, served from one or more content servers, with
link graphs and content-drift models.  A simulated browser loads pages over
the TLS substrate and a crawler collects labelled captures, mirroring the
Selenium + tcpdump pipeline of Section V.
"""

from repro.web.resource import Resource, ResourceKind
from repro.web.page import WebPage
from repro.web.website import Website, Server
from repro.web.generators import WikipediaLikeGenerator, GithubLikeGenerator
from repro.web.updates import (
    ContentDrift,
    DRIFT_KINDS,
    MinorUpdate,
    MajorUpdate,
    GradualDrift,
    drift_from_spec,
)
from repro.web.browser import Browser, PageLoadResult
from repro.web.crawler import Crawler, LabeledCapture

__all__ = [
    "Resource",
    "ResourceKind",
    "WebPage",
    "Website",
    "Server",
    "WikipediaLikeGenerator",
    "GithubLikeGenerator",
    "ContentDrift",
    "DRIFT_KINDS",
    "MinorUpdate",
    "MajorUpdate",
    "GradualDrift",
    "drift_from_spec",
    "Browser",
    "PageLoadResult",
    "Crawler",
    "LabeledCapture",
]
