"""Web resources: the units of content a browser fetches.

A page load is a set of HTTP request/response exchanges; what the adversary
can observe about each exchange is essentially the response size and which
server produced it.  Resources therefore carry only a kind, a size in bytes
and the name of the server role that hosts them.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, replace


class ResourceKind(enum.Enum):
    """The kinds of resources that make up a webpage."""

    HTML = "html"
    STYLESHEET = "stylesheet"
    SCRIPT = "script"
    IMAGE = "image"
    MEDIA = "media"
    FONT = "font"


@dataclass(frozen=True)
class Resource:
    """A single fetchable resource.

    ``server_role`` names the logical server that serves the resource
    (e.g. ``"text"`` or ``"media"`` for the Wikipedia-like site); the
    website maps roles to concrete IP addresses.  ``shared`` marks
    template/theme resources reused by every page of the site — the "shared
    resources" factor of Section III-B.3.
    """

    name: str
    kind: ResourceKind
    size: int
    server_role: str
    shared: bool = False
    request_size: int = 450

    def __post_init__(self) -> None:
        if self.size < 0:
            raise ValueError(f"resource {self.name!r} has negative size")
        if self.request_size <= 0:
            raise ValueError(f"resource {self.name!r} has non-positive request size")
        if not self.name:
            raise ValueError("resource name must be non-empty")
        if not self.server_role:
            raise ValueError("resource server_role must be non-empty")

    def resized(self, new_size: int) -> "Resource":
        """A copy with a different size (used by the content-drift models)."""
        return replace(self, size=int(new_size))
