"""Generators for synthetic Wikipedia-like and Github-like websites.

The paper's two datasets differ in exactly the ways that matter to the
attack and these generators reproduce those differences:

* **Wikipedia-like** (``Wiki19000`` stand-in): TLS 1.2, every page load
  involves the same two content servers (text + media) besides the client,
  all pages share one theme, per-page content is article text plus a small
  number of page-specific images.  Page loads are therefore always
  three-IP-sequence traces.
* **Github-like** (``Github500`` stand-in): TLS 1.3, a heavily distributed
  infrastructure with load-balanced CDN pools and optional external hosts,
  so the number of servers involved varies between loads of the *same*
  page — which is why the paper switches to the two-sequence encoding for
  this dataset (Exp. 3).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

import numpy as np

from repro.net.address import AddressAllocator
from repro.tls.version import TLSVersion
from repro.web.page import WebPage
from repro.web.resource import Resource, ResourceKind
from repro.web.website import Server, Website


def _lognormal_size(rng: np.random.Generator, mean_bytes: float, sigma: float) -> int:
    """A log-normally distributed size with the requested linear mean."""
    mu = np.log(mean_bytes) - sigma**2 / 2
    return max(64, int(rng.lognormal(mu, sigma)))


@dataclass
class WikipediaLikeGenerator:
    """Builds a Wikipedia-like website (shared theme, text + media servers)."""

    n_pages: int = 100
    seed: int = 0
    tls_version: TLSVersion = TLSVersion.TLS_1_2
    mean_article_bytes: float = 60_000.0
    article_sigma: float = 0.9
    mean_image_bytes: float = 35_000.0
    image_sigma: float = 0.8
    max_images_per_page: int = 6
    site_name: str = "wikipedia-like"

    def generate(self, allocator: Optional[AddressAllocator] = None) -> Website:
        """Generate the website deterministically from the seed."""
        if self.n_pages <= 0:
            raise ValueError("n_pages must be positive")
        rng = np.random.default_rng(self.seed)
        allocator = allocator if allocator is not None else AddressAllocator()
        servers = [
            Server(role="text", ip=allocator.allocate(), certificate_chain_size=2900),
            Server(role="media", ip=allocator.allocate(), certificate_chain_size=3400),
        ]
        website = Website(self.site_name, self.tls_version, servers)
        template = self._template_resources(rng)
        for index in range(self.n_pages):
            page_id = f"article-{index:05d}"
            page = WebPage(
                page_id=page_id,
                url=f"https://{self.site_name}.org/wiki/{page_id}",
                template_resources=template,
                content_resources=self._article_content(rng, page_id),
            )
            website.add_page(page)
        self._wire_link_graph(website, rng)
        return website

    def _template_resources(self, rng: np.random.Generator) -> List[Resource]:
        """The theme shared by every article page."""
        return [
            Resource("skin.css", ResourceKind.STYLESHEET, 42_000, "text", shared=True),
            Resource("startup.js", ResourceKind.SCRIPT, 18_000, "text", shared=True),
            Resource("site-logo.png", ResourceKind.IMAGE, 17_000, "media", shared=True),
            Resource("sprite.svg", ResourceKind.IMAGE, 9_000, "media", shared=True),
        ]

    def _article_content(self, rng: np.random.Generator, page_id: str) -> List[Resource]:
        """Article text plus a page-specific set of images."""
        resources = [
            Resource(
                f"{page_id}.html",
                ResourceKind.HTML,
                _lognormal_size(rng, self.mean_article_bytes, self.article_sigma),
                "text",
            )
        ]
        n_images = int(rng.integers(0, self.max_images_per_page + 1))
        for image_index in range(n_images):
            resources.append(
                Resource(
                    f"{page_id}-img{image_index}.jpg",
                    ResourceKind.IMAGE,
                    _lognormal_size(rng, self.mean_image_bytes, self.image_sigma),
                    "media",
                )
            )
        return resources

    def _wire_link_graph(self, website: Website, rng: np.random.Generator) -> None:
        """Each article links to a handful of other articles (for the HMM)."""
        page_ids = website.page_ids
        if len(page_ids) < 2:
            return
        for page_id in page_ids:
            n_links = int(rng.integers(2, min(8, len(page_ids))))
            targets = rng.choice([p for p in page_ids if p != page_id], size=n_links, replace=False)
            for target in targets:
                website.add_link(page_id, str(target))


@dataclass
class GithubLikeGenerator:
    """Builds a Github-like website (TLS 1.3, CDN pools, external hosts)."""

    n_pages: int = 100
    seed: int = 0
    tls_version: TLSVersion = TLSVersion.TLS_1_3
    cdn_pool_size: int = 4
    external_hosts: int = 3
    mean_readme_bytes: float = 25_000.0
    readme_sigma: float = 1.0
    mean_asset_bytes: float = 80_000.0
    asset_sigma: float = 1.1
    max_assets_per_page: int = 8
    external_asset_probability: float = 0.35
    site_name: str = "github-like"

    def generate(self, allocator: Optional[AddressAllocator] = None) -> Website:
        if self.n_pages <= 0:
            raise ValueError("n_pages must be positive")
        if self.cdn_pool_size <= 0:
            raise ValueError("cdn_pool_size must be positive")
        rng = np.random.default_rng(self.seed)
        allocator = allocator if allocator is not None else AddressAllocator()
        servers = [Server(role="web", ip=allocator.allocate(), certificate_chain_size=3100)]
        for index in range(self.cdn_pool_size):
            servers.append(
                Server(
                    role=f"cdn-{index}",
                    ip=allocator.allocate(),
                    pool="cdn",
                    certificate_chain_size=2700,
                )
            )
        for index in range(self.external_hosts):
            servers.append(
                Server(
                    role=f"external-{index}",
                    ip=allocator.allocate(),
                    certificate_chain_size=3600,
                )
            )
        website = Website(self.site_name, self.tls_version, servers)
        template = self._template_resources()
        for index in range(self.n_pages):
            page_id = f"project-{index:05d}"
            page = WebPage(
                page_id=page_id,
                url=f"https://{self.site_name}.com/{page_id}",
                template_resources=template,
                content_resources=self._readme_content(rng, page_id),
            )
            website.add_page(page)
        self._wire_link_graph(website, rng)
        return website

    def _template_resources(self) -> List[Resource]:
        return [
            Resource("frameworks.css", ResourceKind.STYLESHEET, 68_000, "web", shared=True),
            Resource("behaviors.js", ResourceKind.SCRIPT, 95_000, "web", shared=True),
            Resource("octicons.woff2", ResourceKind.FONT, 32_000, "cdn-0", shared=True),
            Resource("header-logo.svg", ResourceKind.IMAGE, 6_000, "cdn-0", shared=True),
        ]

    def _readme_content(self, rng: np.random.Generator, page_id: str) -> List[Resource]:
        resources = [
            Resource(
                f"{page_id}-readme.html",
                ResourceKind.HTML,
                _lognormal_size(rng, self.mean_readme_bytes, self.readme_sigma),
                "web",
            )
        ]
        n_assets = int(rng.integers(0, self.max_assets_per_page + 1))
        for asset_index in range(n_assets):
            if rng.random() < self.external_asset_probability and self.external_hosts > 0:
                role = f"external-{int(rng.integers(0, self.external_hosts))}"
            else:
                role = f"cdn-{int(rng.integers(0, self.cdn_pool_size))}"
            kind = ResourceKind.MEDIA if rng.random() < 0.15 else ResourceKind.IMAGE
            resources.append(
                Resource(
                    f"{page_id}-asset{asset_index}",
                    kind,
                    _lognormal_size(rng, self.mean_asset_bytes, self.asset_sigma),
                    role,
                )
            )
        return resources

    def _wire_link_graph(self, website: Website, rng: np.random.Generator) -> None:
        page_ids = website.page_ids
        if len(page_ids) < 2:
            return
        for page_id in page_ids:
            n_links = int(rng.integers(1, min(5, len(page_ids))))
            targets = rng.choice([p for p in page_ids if p != page_id], size=n_links, replace=False)
            for target in targets:
                website.add_link(page_id, str(target))
