"""Content-drift models (the "distributional shift" of Section III-B.2).

Websites update their pages: article text grows or shrinks, images are
swapped, and over many small edits a page can end up sharing almost nothing
with the version the adversary trained on.  The drift models below mutate
:class:`~repro.web.page.WebPage` objects so the experiments can study how
the attack (and the baselines) behave as the target distribution moves.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

import numpy as np

from repro.web.page import WebPage
from repro.web.resource import Resource, ResourceKind
from repro.web.website import Website


class ContentDrift:
    """Interface for page-update models."""

    def apply(self, page: WebPage, rng: np.random.Generator) -> WebPage:
        """Return an updated version of ``page`` (the input is not mutated)."""
        raise NotImplementedError

    def apply_to_website(
        self,
        website: Website,
        rng: np.random.Generator,
        fraction: float = 1.0,
    ) -> List[str]:
        """Update a random ``fraction`` of the website's pages in place.

        Returns the ids of the pages that were updated, which is what the
        adversary's adaptation process would discover by monitoring the
        site (Section IV-C).
        """
        if not 0.0 <= fraction <= 1.0:
            raise ValueError("fraction must be in [0, 1]")
        page_ids = website.page_ids
        n_updates = int(round(fraction * len(page_ids)))
        if n_updates == 0:
            return []
        chosen = rng.choice(page_ids, size=n_updates, replace=False)
        updated = []
        for page_id in chosen:
            page_id = str(page_id)
            new_page = self.apply(website.get_page(page_id), rng)
            website.update_page(new_page)
            updated.append(page_id)
        return updated


@dataclass
class MinorUpdate(ContentDrift):
    """Small edits: content resource sizes change by a few percent."""

    relative_change: float = 0.05

    def __post_init__(self) -> None:
        if self.relative_change <= 0:
            raise ValueError("relative_change must be positive")

    def apply(self, page: WebPage, rng: np.random.Generator) -> WebPage:
        new_content = []
        for resource in page.content_resources:
            factor = 1.0 + float(rng.normal(0.0, self.relative_change))
            new_content.append(resource.resized(max(64, int(resource.size * factor))))
        return page.with_content(new_content)


@dataclass
class MajorUpdate(ContentDrift):
    """A rewrite: the page's content resources are replaced wholesale."""

    mean_content_bytes: float = 60_000.0
    sigma: float = 0.9
    max_images: int = 6
    image_mean_bytes: float = 35_000.0

    def apply(self, page: WebPage, rng: np.random.Generator) -> WebPage:
        roles = sorted({r.server_role for r in page.content_resources}) or ["text"]
        text_role = roles[0]
        image_role = roles[-1]
        mu = np.log(self.mean_content_bytes) - self.sigma**2 / 2
        new_content = [
            Resource(
                f"{page.page_id}-v{page.version + 1}.html",
                ResourceKind.HTML,
                max(64, int(rng.lognormal(mu, self.sigma))),
                text_role,
            )
        ]
        image_mu = np.log(self.image_mean_bytes) - 0.8**2 / 2
        for index in range(int(rng.integers(0, self.max_images + 1))):
            new_content.append(
                Resource(
                    f"{page.page_id}-v{page.version + 1}-img{index}.jpg",
                    ResourceKind.IMAGE,
                    max(64, int(rng.lognormal(image_mu, 0.8))),
                    image_role,
                )
            )
        return page.with_content(new_content)


@dataclass
class GradualDrift(ContentDrift):
    """Many small edits applied in sequence.

    Section III-C.2 points out that pages are often replaced through small
    but frequent updates whose cumulative effect is a large distributional
    shift; ``steps`` controls how many successive minor edits are applied.
    """

    steps: int = 10
    per_step_change: float = 0.08
    replace_probability: float = 0.15

    def __post_init__(self) -> None:
        if self.steps <= 0:
            raise ValueError("steps must be positive")

    def apply(self, page: WebPage, rng: np.random.Generator) -> WebPage:
        minor = MinorUpdate(relative_change=self.per_step_change)
        major = MajorUpdate()
        current = page
        for _ in range(self.steps):
            if rng.random() < self.replace_probability:
                current = major.apply(current, rng)
            else:
                current = minor.apply(current, rng)
        return current


DRIFT_KINDS = ("minor", "major", "gradual")


def drift_from_spec(spec: Optional[Dict]) -> Optional[ContentDrift]:
    """A :class:`ContentDrift` model from a declarative spec dict.

    The scenario engine describes drift schedules as plain dicts —
    ``{"kind": "gradual", "steps": 5}`` — mirroring
    :func:`repro.defences.defence_from_spec` for defences.  ``None`` (and
    ``{"kind": "none"}``) mean "no drift".  Recognised kinds: ``"minor"``
    (``relative_change``), ``"major"`` (``mean_content_bytes``), and
    ``"gradual"`` (``steps``, ``per_step_change``, ``replace_probability``).
    Anything else raises ``ValueError`` naming the bad field.
    """
    if spec is None:
        return None
    if not isinstance(spec, dict):
        raise ValueError(f"a drift spec must be a dict, got {type(spec).__name__}")
    kind = spec.get("kind")
    if kind == "none":
        return None
    if kind == "minor":
        return MinorUpdate(relative_change=float(spec.get("relative_change", 0.05)))
    if kind == "major":
        return MajorUpdate(mean_content_bytes=float(spec.get("mean_content_bytes", 60_000.0)))
    if kind == "gradual":
        return GradualDrift(
            steps=int(spec.get("steps", 10)),
            per_step_change=float(spec.get("per_step_change", 0.08)),
            replace_probability=float(spec.get("replace_probability", 0.15)),
        )
    raise ValueError(f"unknown drift kind {kind!r}; expected one of {DRIFT_KINDS}")
