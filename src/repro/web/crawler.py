"""The adversary's crawler: repeated, labelled page loads.

The paper's crawlers (100 EC2 instances) visit each URL in a shuffled order
and store one pcap per visit.  :class:`Crawler` does the same against a
synthetic website, producing :class:`LabeledCapture` objects the trace
pipeline turns into training/reference data.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, List, Optional, Sequence

import numpy as np

from repro.net.capture import PacketCapture
from repro.web.browser import Browser
from repro.web.website import Website


@dataclass
class LabeledCapture:
    """A single labelled page-load capture (one pcap in the paper's terms)."""

    page_id: str
    capture: PacketCapture
    visit: int
    website: str


class Crawler:
    """Visits a list of pages repeatedly and labels the resulting captures."""

    def __init__(self, browser: Optional[Browser] = None, seed: int = 0) -> None:
        self.browser = browser if browser is not None else Browser()
        self.seed = int(seed)

    def crawl(
        self,
        website: Website,
        page_ids: Optional[Sequence[str]] = None,
        visits_per_page: int = 10,
    ) -> List[LabeledCapture]:
        """Crawl ``page_ids`` (default: all pages) ``visits_per_page`` times.

        Every visit round shuffles the page order, like the paper's crawler
        instances, so consecutive captures of the same page are separated in
        time and interleaved with other pages.
        """
        if visits_per_page <= 0:
            raise ValueError("visits_per_page must be positive")
        ids = list(page_ids) if page_ids is not None else website.page_ids
        unknown = [p for p in ids if p not in website]
        if unknown:
            raise KeyError(f"unknown page ids: {unknown[:5]}")
        rng = np.random.default_rng(self.seed)
        captures: List[LabeledCapture] = []
        for visit in range(visits_per_page):
            order = [ids[i] for i in rng.permutation(len(ids))]
            for page_id in order:
                result = self.browser.load(website, page_id, rng)
                captures.append(
                    LabeledCapture(
                        page_id=page_id,
                        capture=result.capture,
                        visit=visit,
                        website=website.name,
                    )
                )
        return captures

    def crawl_single(self, website: Website, page_id: str, visit: int = 0) -> LabeledCapture:
        """One labelled load of one page (used by the adaptation process)."""
        rng = np.random.default_rng(self.seed + visit * 1_000_003 + hash(page_id) % 1_000_000)
        result = self.browser.load(website, page_id, rng)
        return LabeledCapture(page_id=page_id, capture=result.capture, visit=visit, website=website.name)
