"""A simulated browser that loads pages over the TLS substrate.

The browser reproduces the data-collection behaviour of Section V: a fresh
"incognito" profile with no caches, one TLS session per contacted server,
the main HTML document fetched first and the remaining resources fetched in
a non-deterministic order with chunked responses — the source of the
intra-class variability the embedding model has to absorb.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

import numpy as np

from repro.net.address import IPAddress
from repro.net.capture import PacketCapture, Sniffer
from repro.net.channel import TransmissionChannel
from repro.net.latency import LatencyModel
from repro.tls.padding import RecordPaddingPolicy
from repro.tls.session import TLSSession
from repro.web.resource import Resource, ResourceKind
from repro.web.website import Server, Website


@dataclass
class PageLoadResult:
    """Everything produced by one simulated page load."""

    page_id: str
    capture: PacketCapture
    servers_contacted: List[IPAddress]
    duration: float


@dataclass
class Browser:
    """A headless browser simulator for single page loads."""

    client_ip: IPAddress = field(default_factory=lambda: IPAddress("10.0.0.200"))
    latency: LatencyModel = field(default_factory=lambda: LatencyModel(base_rtt=0.035, jitter=0.004))
    retransmission_rate: float = 0.003
    incognito: bool = True
    record_padding_policy: Optional[RecordPaddingPolicy] = None
    max_response_chunks: int = 4

    def __post_init__(self) -> None:
        if self.max_response_chunks <= 0:
            raise ValueError("max_response_chunks must be positive")

    def load(self, website: Website, page_id: str, rng: np.random.Generator) -> PageLoadResult:
        """Load ``page_id`` from ``website`` and return the sniffed capture."""
        page = website.get_page(page_id)
        resources = list(page.resources)
        if not self.incognito:
            # A warm cache skips the shared template resources entirely;
            # the paper's crawler always runs incognito, but the option lets
            # users study the caching artifact it cites.
            resources = [r for r in resources if not r.shared]
        if not resources:
            raise ValueError(f"page {page_id!r} has no resources to fetch")

        sniffer = Sniffer(self.client_ip)
        sniffer.start()
        assignments = self._assign_servers(website, resources, rng)
        sessions: Dict[IPAddress, TLSSession] = {}
        session_clock: Dict[IPAddress, float] = {}

        # The main document is fetched first; sub-resources follow in a
        # shuffled order once the browser has "parsed" the HTML.
        ordered = self._fetch_order(resources, rng)
        now = 0.0
        main_done = 0.0
        for index, resource in enumerate(ordered):
            server = assignments[resource.name]
            session = sessions.get(server.ip)
            if session is None:
                session = self._open_session(website, server, sniffer, rng)
                start = now if index == 0 else main_done + float(rng.uniform(0.0, 0.01))
                session_clock[server.ip] = session.handshake(start, rng)
                sessions[server.ip] = session
            start_time = max(session_clock[server.ip], 0.0 if index == 0 else main_done)
            chunks = int(rng.integers(1, self.max_response_chunks + 1))
            end = session.exchange(
                resource.request_size,
                resource.size,
                start_time,
                rng,
                response_chunks=chunks,
            )
            session_clock[server.ip] = end
            if index == 0:
                main_done = end
            now = max(now, end)

        capture = sniffer.stop()
        return PageLoadResult(
            page_id=page_id,
            capture=capture,
            servers_contacted=list(sessions),
            duration=capture.duration,
        )

    # ------------------------------------------------------------------ internals
    def _assign_servers(
        self, website: Website, resources: List[Resource], rng: np.random.Generator
    ) -> Dict[str, Server]:
        """Map each resource to a concrete server, applying load balancing."""
        pools: Dict[str, List[Server]] = {}
        for server in website.servers:
            if server.pool:
                pools.setdefault(server.pool, []).append(server)
        assignments: Dict[str, Server] = {}
        for resource in resources:
            server = website.server_for_role(resource.server_role)
            if server.pool:
                members = pools[server.pool]
                server = members[int(rng.integers(0, len(members)))]
            assignments[resource.name] = server
        return assignments

    def _fetch_order(self, resources: List[Resource], rng: np.random.Generator) -> List[Resource]:
        """HTML document first, everything else in a random order."""
        html = [r for r in resources if r.kind is ResourceKind.HTML]
        others = [r for r in resources if r.kind is not ResourceKind.HTML]
        if others:
            order = rng.permutation(len(others))
            others = [others[i] for i in order]
        return (html or others[:1]) + (others if html else others[1:])

    def _open_session(
        self, website: Website, server: Server, sniffer: Sniffer, rng: np.random.Generator
    ) -> TLSSession:
        channel = TransmissionChannel(
            client_ip=self.client_ip,
            server_ip=server.ip,
            latency=self.latency,
            retransmission_rate=self.retransmission_rate,
            sniffer=sniffer,
        )
        return TLSSession(
            channel=channel,
            version=website.tls_version,
            padding_policy=self.record_padding_policy,
            certificate_chain_size=server.certificate_chain_size,
            session_resumption=bool(rng.random() < 0.1),
        )
